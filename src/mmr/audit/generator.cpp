#include "mmr/audit/generator.hpp"

#include <algorithm>

#include "mmr/sim/assert.hpp"

namespace mmr::audit {

const std::vector<LoadProfile>& all_profiles() {
  static const std::vector<LoadProfile> profiles = {
      LoadProfile::kUniform, LoadProfile::kSkewed, LoadProfile::kHotspot,
      LoadProfile::kDuplicate};
  return profiles;
}

const char* profile_name(LoadProfile profile) {
  switch (profile) {
    case LoadProfile::kUniform: return "uniform";
    case LoadProfile::kSkewed: return "skewed";
    case LoadProfile::kHotspot: return "hotspot";
    case LoadProfile::kDuplicate: return "duplicate";
  }
  return "?";
}

std::vector<Candidate> generate_step(Rng& rng, const GeneratorOptions& opt) {
  MMR_ASSERT(opt.ports >= 1 && opt.levels >= 1);
  MMR_ASSERT(opt.fill > 0.0 && opt.fill <= 1.0);
  const std::uint32_t ports = opt.ports;

  // Hot outputs for the hotspot profile (one or two, seed-dependent).
  const std::uint32_t hot_a = static_cast<std::uint32_t>(rng.uniform(ports));
  const std::uint32_t hot_b = static_cast<std::uint32_t>(rng.uniform(ports));

  std::vector<Candidate> step;
  for (std::uint32_t input = 0; input < ports; ++input) {
    double fill = opt.fill;
    if (opt.profile == LoadProfile::kSkewed) {
      // First quarter of the inputs run hot, the rest mostly idle.
      fill = input < std::max(1u, ports / 4) ? 0.95 : 0.15;
    }
    // Repeated-output target for the duplicate profile, per input.
    const std::uint32_t repeat_out =
        static_cast<std::uint32_t>(rng.uniform(ports));
    // Priorities must be non-increasing with level (CandidateSet contract);
    // walk a saturating counter downward.
    Priority priority = 1000 + rng.uniform(1000);
    for (std::uint32_t level = 0; level < opt.levels; ++level) {
      if (!rng.chance(fill)) break;  // keeps levels contiguous from 0
      Candidate c;
      c.input = static_cast<std::uint16_t>(input);
      c.level = static_cast<std::uint8_t>(level);
      c.vc = level;  // one VC per level is enough for arbitration purposes
      c.priority = priority;
      switch (opt.profile) {
        case LoadProfile::kHotspot:
          c.output = static_cast<std::uint16_t>(
              rng.chance(0.85) ? (rng.chance(0.5) ? hot_a : hot_b)
                               : rng.uniform(ports));
          break;
        case LoadProfile::kDuplicate:
          // Mostly re-request the same output at successive levels; this is
          // what a deep VC backlog behind one route looks like.
          c.output = static_cast<std::uint16_t>(
              rng.chance(0.7) ? repeat_out : rng.uniform(ports));
          break;
        default:
          c.output = static_cast<std::uint16_t>(rng.uniform(ports));
          break;
      }
      step.push_back(c);
      if (priority > 0) priority -= rng.uniform(std::min<Priority>(priority, 64) + 1);
    }
  }
  return step;
}

CaseSpec generate_case(const std::string& arbiter, std::uint64_t seed,
                       std::uint32_t steps, const GeneratorOptions& opt) {
  CaseSpec spec;
  spec.arbiter = arbiter;
  spec.seed = seed;
  spec.ports = opt.ports;
  spec.levels = opt.levels;
  // Fork stream 1 for the candidate stream so the arbiter's own rng (stream
  // 0, seeded with `seed` directly by the harness) stays independent.
  Rng rng(seed, /*stream=*/1);
  spec.steps.reserve(steps);
  for (std::uint32_t s = 0; s < steps; ++s)
    spec.steps.push_back(generate_step(rng, opt));
  spec.normalize();
  return spec;
}

}  // namespace mmr::audit
