// Delta-debugging shrinker for failing audit cases.  Greedily drops whole
// steps, then individual candidates, re-normalizing and replaying from a
// fresh arbiter after every removal, until no single removal preserves the
// failure.  The result is the minimal-by-one-removal spec that still
// violates — small enough to read, and checked in as a regression corpus.
#pragma once

#include <functional>

#include "mmr/audit/spec.hpp"

namespace mmr::audit {

/// Returns true when the candidate spec still exhibits the failure (replayed
/// from a fresh arbiter; stateful pointer history is part of the spec).
using FailurePredicate = std::function<bool(const CaseSpec&)>;

struct ShrinkResult {
  CaseSpec spec;
  std::size_t trials = 0;  ///< predicate evaluations spent shrinking
};

/// `still_fails(spec)` must be true on entry; the returned spec satisfies it
/// too and is a 1-minimal subset of the input's steps/candidates.
ShrinkResult shrink_case(CaseSpec spec, const FailurePredicate& still_fails);

}  // namespace mmr::audit
