#include "mmr/audit/spec.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "mmr/sim/assert.hpp"

namespace mmr::audit {

void CaseSpec::normalize() {
  std::uint32_t max_levels = 1;
  for (std::vector<Candidate>& step : steps) {
    // Stable-sort by (input, level) so each input's candidates keep their
    // link-scheduler rank order, then relabel levels contiguously.
    std::stable_sort(step.begin(), step.end(),
                     [](const Candidate& a, const Candidate& b) {
                       if (a.input != b.input) return a.input < b.input;
                       return a.level < b.level;
                     });
    std::uint32_t current_input = ports;  // sentinel: no input yet
    std::uint8_t next_level = 0;
    for (Candidate& c : step) {
      if (c.input != current_input) {
        current_input = c.input;
        next_level = 0;
      }
      c.level = next_level++;
      max_levels = std::max<std::uint32_t>(max_levels, next_level);
    }
  }
  levels = std::max(levels, max_levels);
}

CandidateSet CaseSpec::set_for_step(std::size_t step) const {
  MMR_ASSERT(step < steps.size());
  CandidateSet set(ports, levels);
  for (const Candidate& c : steps[step]) set.add(c);
  return set;
}

std::size_t CaseSpec::total_candidates() const {
  std::size_t total = 0;
  for (const std::vector<Candidate>& step : steps) total += step.size();
  return total;
}

std::string to_text(const CaseSpec& spec) {
  std::ostringstream out;
  out << "arbiter " << spec.arbiter << '\n';
  out << "seed " << spec.seed << '\n';
  out << "ports " << spec.ports << '\n';
  out << "levels " << spec.levels << '\n';
  for (const std::vector<Candidate>& step : spec.steps) {
    out << "step\n";
    for (const Candidate& c : step) {
      out << "c " << c.input << ' ' << c.output << ' '
          << static_cast<std::uint32_t>(c.level) << ' ' << c.vc << ' '
          << c.priority << '\n';
    }
  }
  out << "end\n";
  return out.str();
}

CaseSpec parse_case(const std::string& text) {
  CaseSpec spec;
  spec.steps.clear();
  std::istringstream in(text);
  std::string line;
  bool saw_end = false;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.resize(comment);
    std::istringstream fields(line);
    std::string tag;
    if (!(fields >> tag)) continue;  // blank line
    auto want = [&](auto& value) {
      if (!(fields >> value)) {
        throw std::invalid_argument("case spec line " +
                                    std::to_string(line_no) +
                                    ": missing value after '" + tag + "'");
      }
    };
    if (tag == "arbiter") {
      want(spec.arbiter);
    } else if (tag == "seed") {
      want(spec.seed);
    } else if (tag == "ports") {
      want(spec.ports);
    } else if (tag == "levels") {
      want(spec.levels);
    } else if (tag == "step") {
      spec.steps.emplace_back();
    } else if (tag == "c") {
      if (spec.steps.empty()) {
        throw std::invalid_argument("case spec line " +
                                    std::to_string(line_no) +
                                    ": candidate before first 'step'");
      }
      std::uint32_t input = 0, output = 0, level = 0;
      Candidate c;
      want(input);
      want(output);
      want(level);
      want(c.vc);
      want(c.priority);
      c.input = static_cast<std::uint16_t>(input);
      c.output = static_cast<std::uint16_t>(output);
      c.level = static_cast<std::uint8_t>(level);
      spec.steps.back().push_back(c);
    } else if (tag == "end") {
      saw_end = true;
      break;
    } else {
      throw std::invalid_argument("case spec line " + std::to_string(line_no) +
                                  ": unknown tag '" + tag + "'");
    }
  }
  if (!saw_end)
    throw std::invalid_argument("case spec is missing the 'end' line");
  if (spec.ports == 0 || spec.levels == 0)
    throw std::invalid_argument("case spec needs ports >= 1 and levels >= 1");
  return spec;
}

}  // namespace mmr::audit
