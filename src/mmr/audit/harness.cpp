#include "mmr/audit/harness.hpp"

#include <memory>
#include <sstream>

#include "mmr/arbiter/factory.hpp"
#include "mmr/audit/generator.hpp"
#include "mmr/audit/shrink.hpp"
#include "mmr/sim/rng.hpp"

namespace mmr::audit {
namespace {

constexpr std::uint64_t kProfileSalt = 0x9e3779b97f4a7c15ull;

}  // namespace

std::vector<Violation> run_case(const CaseSpec& spec) {
  const std::unique_ptr<SwitchArbiter> arbiter =
      make_arbiter(spec.arbiter, spec.ports, Rng(spec.seed, /*stream=*/0));
  const ArbiterTraits& traits = arbiter_traits(spec.arbiter);
  const std::uint32_t iterations =
      arbiter_iterations(spec.arbiter, spec.ports);
  std::vector<Violation> violations;
  for (std::size_t s = 0; s < spec.steps.size(); ++s) {
    const CandidateSet set = spec.set_for_step(s);
    const Matching matching = arbiter->arbitrate(set);
    std::vector<Violation> found =
        check_step(set, matching, traits, iterations, s);
    violations.insert(violations.end(), found.begin(), found.end());
  }
  return violations;
}

AuditReport run_audit(const AuditOptions& options) {
  AuditReport report;
  const std::vector<std::string>& names =
      options.arbiters.empty() ? arbiter_names() : options.arbiters;

  const auto record = [&](CaseSpec spec, const Violation& violation) {
    ++report.failure_count;
    if (report.failures.size() >= options.max_failures) return;
    if (options.shrink) {
      ShrinkResult shrunk = shrink_case(
          std::move(spec),
          [](const CaseSpec& trial) { return !run_case(trial).empty(); });
      report.shrink_trials += shrunk.trials;
      // Report the violation the shrunk spec actually reproduces (shrinking
      // preserves "some violation", not necessarily the original one).
      std::vector<Violation> remaining = run_case(shrunk.spec);
      report.failures.push_back(
          {std::move(shrunk.spec),
           remaining.empty() ? violation : remaining.front()});
    } else {
      report.failures.push_back({std::move(spec), violation});
    }
  };

  for (const std::string& name : names) {
    for (const LoadProfile profile : all_profiles()) {
      GeneratorOptions gen;
      gen.ports = options.ports;
      gen.levels = options.levels;
      gen.profile = profile;
      const std::uint64_t salt =
          kProfileSalt * (static_cast<std::uint64_t>(profile) + 1);
      for (std::uint32_t i = 0; i < options.seeds; ++i) {
        const std::uint64_t seed = (options.seed_base + i) ^ salt;
        CaseSpec spec = generate_case(name, seed, options.steps, gen);
        ++report.cases;
        report.steps_checked += spec.steps.size();
        const std::vector<Violation> violations = run_case(spec);
        if (!violations.empty()) record(std::move(spec), violations.front());
      }
    }
    if (options.check_fairness && arbiter_traits(name).rotation_fair) {
      const std::unique_ptr<SwitchArbiter> arbiter =
          make_arbiter(name, options.ports, Rng(options.seed_base, 0));
      const std::vector<Violation> violations =
          check_rotation_fairness(*arbiter, options.ports);
      report.steps_checked += 9u * options.ports;
      if (!violations.empty()) {
        ++report.failure_count;
        if (report.failures.size() < options.max_failures) {
          CaseSpec marker;  // fairness is matrix-driven; spec is a label
          marker.arbiter = name;
          marker.ports = options.ports;
          marker.seed = options.seed_base;
          report.failures.push_back({std::move(marker), violations.front()});
        }
      }
    }
  }
  return report;
}

TwinDiffReport run_twin_diff(const TwinDiffOptions& options) {
  TwinDiffReport report;
  const auto& pairs =
      options.pairs.empty() ? arbiter_twin_pairs() : options.pairs;

  const auto record = [&](const std::string& fast, const std::string& ref,
                          const CaseSpec& spec, std::size_t step,
                          const std::string& detail) {
    ++report.failure_count;
    if (report.mismatches.size() >= options.max_failures) return;
    std::ostringstream out;
    out << fast << " vs " << ref << " diverge at step " << step << " ("
        << detail << ")\n"
        << to_text(spec);
    report.mismatches.push_back(out.str());
  };

  for (const auto& [fast, ref] : pairs) {
    for (const std::uint32_t ports : options.ports) {
      for (const LoadProfile profile : all_profiles()) {
        GeneratorOptions gen;
        gen.ports = ports;
        gen.levels = options.levels;
        gen.profile = profile;
        const std::uint64_t salt =
            kProfileSalt * (static_cast<std::uint64_t>(profile) + 1);
        for (std::uint32_t i = 0; i < options.seeds; ++i) {
          const std::uint64_t seed = (options.seed_base + i) ^ salt;
          const CaseSpec spec =
              generate_case(fast, seed, options.steps, gen);
          ++report.cases;
          const std::unique_ptr<SwitchArbiter> a =
              make_arbiter(fast, ports, Rng(seed, /*stream=*/0));
          const std::unique_ptr<SwitchArbiter> b =
              make_arbiter(ref, ports, Rng(seed, /*stream=*/0));
          bool diverged = false;  // stop at the first diverging step: the
                                  // twins' internal state differs from there
          for (std::size_t s = 0; s < spec.steps.size() && !diverged; ++s) {
            const CandidateSet set = spec.set_for_step(s);
            const Matching ma = a->arbitrate(set);
            const Matching mb = b->arbitrate(set);
            ++report.steps_checked;
            for (std::uint32_t in = 0; in < ports; ++in) {
              if (ma.output_of(in) != mb.output_of(in) ||
                  ma.candidate_of(in) != mb.candidate_of(in)) {
                std::ostringstream detail;
                detail << "input " << in << ": " << fast << " grants output "
                       << ma.output_of(in) << " candidate "
                       << ma.candidate_of(in) << ", " << ref
                       << " grants output " << mb.output_of(in)
                       << " candidate " << mb.candidate_of(in);
                record(fast, ref, spec, s, detail.str());
                diverged = true;
                break;
              }
            }
          }
        }
      }
    }
  }
  return report;
}

std::string TwinDiffReport::summary() const {
  std::ostringstream out;
  out << "twin-diff: " << cases << " cases, " << steps_checked
      << " arbitrations compared, " << failure_count << " divergence(s)\n";
  for (const std::string& mismatch : mismatches) out << "--- " << mismatch;
  return out.str();
}

std::string AuditReport::summary() const {
  std::ostringstream out;
  out << "audit: " << cases << " cases, " << steps_checked
      << " arbitrations checked, " << failure_count << " failure(s)";
  if (shrink_trials > 0) out << ", " << shrink_trials << " shrink trials";
  out << '\n';
  for (const AuditFailure& failure : failures) {
    out << "--- " << failure.spec.arbiter << ": " << failure.violation.kind
        << " at step " << failure.violation.step << ": "
        << failure.violation.detail << '\n';
    if (!failure.spec.steps.empty()) out << to_text(failure.spec);
  }
  return out.str();
}

}  // namespace mmr::audit
