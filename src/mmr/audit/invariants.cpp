#include "mmr/audit/invariants.hpp"

#include <algorithm>
#include <string>

#include "mmr/arbiter/maxmatch.hpp"
#include "mmr/arbiter/verify.hpp"

namespace mmr::audit {
namespace {

// Built with += rather than operator+ chains: GCC 12's -Wrestrict raises a
// false positive (PR 105651) on `const char* + std::string&&` when inlining
// happens to expose the insert() path.
std::string pair_str(std::uint32_t input, std::uint32_t output) {
  std::string out = "(";
  out += std::to_string(input);
  out += " -> ";
  out += std::to_string(output);
  out += ')';
  return out;
}

}  // namespace

std::uint32_t oracle_max_matching(const CandidateSet& candidates) {
  std::vector<std::vector<std::uint32_t>> adj(candidates.ports());
  for (const Candidate& c : candidates.all()) {
    std::vector<std::uint32_t>& outs = adj[c.input];
    if (std::find(outs.begin(), outs.end(), c.output) == outs.end())
      outs.push_back(c.output);
  }
  return MaxMatchArbiter::max_matching_size(candidates.ports(), adj);
}

std::vector<Violation> check_step(const CandidateSet& candidates,
                                  const Matching& matching,
                                  const ArbiterTraits& traits,
                                  std::uint32_t iterations, std::size_t step) {
  std::vector<Violation> violations;

  const MatchingCheck check = check_matching(candidates, matching);
  if (!check.valid) {
    violations.push_back({"validity", step, check.problem});
    // A structurally broken matching makes the remaining checks meaningless.
    return violations;
  }

  const bool maximal = is_maximal(candidates, matching);
  if (traits.maximal && !maximal) {
    violations.push_back(
        {"maximality", step,
         "matching of size " + std::to_string(matching.size()) +
             " leaves a request with both endpoints free"});
  }
  if (traits.exact_maximum) {
    const std::uint32_t oracle = oracle_max_matching(candidates);
    if (matching.size() != oracle) {
      violations.push_back(
          {"exact-maximum", step,
         "matching size " + std::to_string(matching.size()) +
             " != Hopcroft-Karp maximum " + std::to_string(oracle)});
    }
  }
  if (traits.iteration_bounded && !maximal && matching.size() < iterations) {
    violations.push_back(
        {"iteration-bound", step,
         "non-maximal matching of size " + std::to_string(matching.size()) +
             " after " + std::to_string(iterations) +
             " iterations (each iteration must add a match or converge)"});
  }
  if (traits.priority_ordered) {
    // A granted candidate loses to a strictly higher-priority candidate for
    // the same output only if that candidate's input went entirely
    // unmatched: the input was still free when the output was handed out,
    // so priority order alone decided against it.
    for (const Candidate& rival : candidates.all()) {
      if (matching.input_matched(rival.input)) continue;
      const std::int32_t granted_input = matching.input_of(rival.output);
      if (granted_input < 0) continue;  // covered by the maximality check
      const std::int32_t granted_index = matching.candidate_of(
          static_cast<std::uint32_t>(granted_input));
      if (granted_index < 0) continue;
      const Candidate& granted =
          candidates.at(static_cast<std::size_t>(granted_index));
      if (rival.priority > granted.priority) {
        violations.push_back(
            {"priority-order", step,
             "output " + std::to_string(rival.output) + " granted to " +
                 pair_str(granted.input, granted.output) + " at priority " +
                 std::to_string(granted.priority) + " while unmatched input " +
                 std::to_string(rival.input) + " offered priority " +
                 std::to_string(rival.priority)});
      }
    }
  }
  return violations;
}

std::vector<Violation> check_rotation_fairness(SwitchArbiter& arbiter,
                                               std::uint32_t ports) {
  // Persistent full request matrix: input i requests output (i + l) % P at
  // level l, all at equal priority, so only pointer rotation breaks ties.
  CandidateSet full(ports, ports);
  for (std::uint32_t input = 0; input < ports; ++input) {
    for (std::uint32_t level = 0; level < ports; ++level) {
      Candidate c;
      c.input = static_cast<std::uint16_t>(input);
      c.output = static_cast<std::uint16_t>((input + level) % ports);
      c.level = static_cast<std::uint8_t>(level);
      c.vc = level;
      c.priority = 1;
      full.add(c);
    }
  }

  const std::uint32_t warm = 8 * ports;
  for (std::uint32_t cycle = 0; cycle < warm; ++cycle)
    (void)arbiter.arbitrate(full);

  std::vector<Violation> violations;
  std::vector<std::uint32_t> served(static_cast<std::size_t>(ports) * ports,
                                    0);
  bool window_perfect = true;
  for (std::uint32_t cycle = 0; cycle < ports; ++cycle) {
    const Matching m = arbiter.arbitrate(full);
    if (m.size() != ports) {
      violations.push_back(
          {"rotation-fairness", warm + cycle,
           "window cycle " + std::to_string(cycle) +
               ": matching size " + std::to_string(m.size()) + " of " +
               std::to_string(ports) +
               " under a full request matrix after warm-up"});
      window_perfect = false;
      continue;
    }
    for (std::uint32_t input = 0; input < ports; ++input) {
      const std::int32_t output = m.output_of(input);
      if (output >= 0)
        ++served[static_cast<std::size_t>(input) * ports +
                 static_cast<std::uint32_t>(output)];
    }
  }
  if (!window_perfect) return violations;  // pair counts would only repeat it
  for (std::uint32_t input = 0; input < ports; ++input) {
    for (std::uint32_t output = 0; output < ports; ++output) {
      const std::uint32_t count =
          served[static_cast<std::size_t>(input) * ports + output];
      if (count != 1) {
        violations.push_back(
            {"rotation-fairness", warm + ports,
             "pair " + pair_str(input, output) + " served " +
                 std::to_string(count) + " times in a window of " +
                 std::to_string(ports) + " cycles (want exactly 1)"});
      }
    }
  }
  return violations;
}

}  // namespace mmr::audit
