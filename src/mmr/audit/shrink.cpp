#include "mmr/audit/shrink.hpp"

#include "mmr/sim/assert.hpp"

namespace mmr::audit {
namespace {

/// Tries one mutated spec; on preserved failure commits it to `spec`.
bool try_accept(CaseSpec& spec, CaseSpec trial,
                const FailurePredicate& still_fails, std::size_t& trials) {
  trial.normalize();
  ++trials;
  if (!still_fails(trial)) return false;
  spec = std::move(trial);
  return true;
}

}  // namespace

ShrinkResult shrink_case(CaseSpec spec, const FailurePredicate& still_fails) {
  MMR_ASSERT_MSG(still_fails(spec), "shrink_case needs a failing input");
  ShrinkResult result;

  // Fast pass: halve the step sequence from either end while that keeps the
  // failure, before the O(candidates) greedy passes below.
  bool changed = true;
  while (changed && spec.steps.size() > 1) {
    changed = false;
    const std::size_t half = spec.steps.size() / 2;
    CaseSpec tail = spec;
    tail.steps.erase(tail.steps.begin(),
                     tail.steps.begin() + static_cast<std::ptrdiff_t>(half));
    if (try_accept(spec, std::move(tail), still_fails, result.trials)) {
      changed = true;
      continue;
    }
    CaseSpec head = spec;
    head.steps.resize(spec.steps.size() - half);
    changed = try_accept(spec, std::move(head), still_fails, result.trials);
  }

  // Greedy fixpoint: drop single steps, then single candidates.
  changed = true;
  while (changed) {
    changed = false;
    for (std::size_t s = spec.steps.size(); s-- > 0;) {
      if (spec.steps.size() == 1) break;
      CaseSpec trial = spec;
      trial.steps.erase(trial.steps.begin() + static_cast<std::ptrdiff_t>(s));
      changed |= try_accept(spec, std::move(trial), still_fails, result.trials);
    }
    for (std::size_t s = spec.steps.size(); s-- > 0;) {
      for (std::size_t c = spec.steps[s].size(); c-- > 0;) {
        CaseSpec trial = spec;
        trial.steps[s].erase(trial.steps[s].begin() +
                             static_cast<std::ptrdiff_t>(c));
        changed |=
            try_accept(spec, std::move(trial), still_fails, result.trials);
      }
    }
  }

  result.spec = std::move(spec);
  return result;
}

}  // namespace mmr::audit
