// Seeded random CandidateSet generator for the differential audit harness.
// Each profile stresses a different arbiter code path: uniform request
// matrices, load skewed onto a few inputs, hotspot outputs everyone fights
// over, and duplicate (input -> output) requests at different levels (the
// shape COA's level loop and iSLIP's VOQ collapse must both handle).
#pragma once

#include <cstdint>
#include <vector>

#include "mmr/arbiter/candidate.hpp"
#include "mmr/audit/spec.hpp"
#include "mmr/sim/rng.hpp"

namespace mmr::audit {

enum class LoadProfile : std::uint8_t {
  kUniform,    ///< each (input, level) slot filled i.i.d., uniform output
  kSkewed,     ///< a few hot inputs request much more than the rest
  kHotspot,    ///< most requests converge on one or two outputs
  kDuplicate,  ///< inputs repeat the same output across several levels
};

/// All profiles, for sweeps.
const std::vector<LoadProfile>& all_profiles();

/// Short stable name ("uniform", ...), for labels and dumped specs.
const char* profile_name(LoadProfile profile);

struct GeneratorOptions {
  std::uint32_t ports = 4;
  std::uint32_t levels = 2;
  /// Probability that a given (input, level) slot holds a candidate (before
  /// profile-specific skew is applied).
  double fill = 0.6;
  LoadProfile profile = LoadProfile::kUniform;
};

/// One random candidate list (legal for CaseSpec::set_for_step after
/// CaseSpec::normalize(); levels are contiguous and priorities non-increasing
/// per input by construction).
std::vector<Candidate> generate_step(Rng& rng, const GeneratorOptions& opt);

/// A full replayable case: `steps` candidate lists from `generate_step`,
/// normalized, with the arbiter name and seed recorded for replay.
CaseSpec generate_case(const std::string& arbiter, std::uint64_t seed,
                       std::uint32_t steps, const GeneratorOptions& opt);

}  // namespace mmr::audit
