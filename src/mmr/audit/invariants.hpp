// Per-step matching invariants for the differential audit harness.  Each
// check asserts only what ArbiterTraits documents for the arbiter under
// test, with MaxMatchArbiter's Hopcroft-Karp size as the oracle, so a
// reported violation is always an implementation bug (or a wrong trait
// claim — equally worth catching).
#pragma once

#include <string>
#include <vector>

#include "mmr/arbiter/candidate.hpp"
#include "mmr/arbiter/factory.hpp"
#include "mmr/arbiter/matching.hpp"

namespace mmr::audit {

struct Violation {
  std::string kind;    ///< "validity", "maximality", "exact-maximum",
                       ///< "iteration-bound", "priority-order",
                       ///< "rotation-fairness"
  std::size_t step;    ///< step index within the driving sequence
  std::string detail;  ///< human-readable description
};

/// Checks one arbitration result against the arbiter's documented traits:
/// structural validity always; maximality / exact-maximum vs the
/// Hopcroft-Karp oracle; the `is_maximal || size >= iterations` bound for
/// iterative schemes; and COA/greedy priority ordering (no granted
/// candidate beats a strictly higher-priority candidate for the same output
/// whose input went entirely unmatched).
std::vector<Violation> check_step(const CandidateSet& candidates,
                                  const Matching& matching,
                                  const ArbiterTraits& traits,
                                  std::uint32_t iterations, std::size_t step);

/// Maximum matching size of the request graph (Hopcroft-Karp oracle).
std::uint32_t oracle_max_matching(const CandidateSet& candidates);

/// Windowed pointer-rotation fairness (traits.rotation_fair): drives the
/// arbiter with a persistent full request matrix for `8 * ports` warm-up
/// cycles, then requires every matching in the next `ports` cycles to be
/// perfect and the window to serve each (input, output) pair exactly once.
/// The arbiter's pointer state is consumed; pass a fresh instance.
std::vector<Violation> check_rotation_fairness(SwitchArbiter& arbiter,
                                               std::uint32_t ports);

}  // namespace mmr::audit
