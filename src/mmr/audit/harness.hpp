// Differential arbiter-audit harness: drives every registered arbiter over
// seeded random candidate sequences (all load profiles), checks the
// per-step invariants its traits document, shrinks any failure, and reports
// replayable specs.  Used by tests (property suites), bench/audit_soak, and
// scripts/check.sh.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mmr/audit/invariants.hpp"
#include "mmr/audit/spec.hpp"

namespace mmr::audit {

struct AuditOptions {
  /// Arbiters to audit; empty selects every registered arbiter.
  std::vector<std::string> arbiters;
  std::uint64_t seed_base = 1;
  std::uint32_t seeds = 200;  ///< random cases per (arbiter, profile)
  std::uint32_t ports = 4;
  std::uint32_t levels = 2;
  std::uint32_t steps = 12;  ///< arbitration steps per case
  bool shrink = true;
  /// Also run the windowed rotation-fairness check on rotation_fair
  /// arbiters (deterministic; once per arbiter).
  bool check_fairness = true;
  /// Stop collecting after this many failures (counting continues).
  std::size_t max_failures = 8;
};

struct AuditFailure {
  CaseSpec spec;        ///< shrunk when AuditOptions::shrink, else original
  Violation violation;  ///< first violation the (shrunk) spec reproduces
};

struct AuditReport {
  std::uint64_t cases = 0;          ///< random cases replayed
  std::uint64_t steps_checked = 0;  ///< arbitrations checked
  std::uint64_t failure_count = 0;  ///< failing cases (not all collected)
  std::uint64_t shrink_trials = 0;  ///< replays spent shrinking
  std::vector<AuditFailure> failures;
  [[nodiscard]] bool clean() const { return failure_count == 0; }
  /// Multi-line human summary, including dumped specs for every collected
  /// failure (replayable via parse_case + run_case).
  [[nodiscard]] std::string summary() const;
};

/// Replays one spec from a fresh arbiter and returns every violation of the
/// arbiter's documented traits, in step order.
std::vector<Violation> run_case(const CaseSpec& spec);

/// The full differential audit: arbiters x profiles x seeds, plus the
/// fairness windows.  Deterministic for fixed options.
AuditReport run_audit(const AuditOptions& options);

/// Bit-identity soak over arbiter_twin_pairs(): both sides of each pair
/// replay identical candidate sequences from identical RNG seeds, and every
/// grant must agree exactly — (input, output) pairing and the granted
/// candidate index.  A single diverging grant is an implementation bug in
/// the optimised engine (or a semantics change that needs a new twin).
struct TwinDiffOptions {
  /// (optimised, reference) pairs; empty selects arbiter_twin_pairs().
  std::vector<std::pair<std::string, std::string>> pairs;
  std::uint64_t seed_base = 1;
  std::uint32_t seeds = 200;  ///< random cases per (pair, port count, profile)
  std::vector<std::uint32_t> ports = {4};
  std::uint32_t levels = 2;
  std::uint32_t steps = 12;
  std::size_t max_failures = 8;
};

struct TwinDiffReport {
  std::uint64_t cases = 0;
  std::uint64_t steps_checked = 0;
  std::uint64_t failure_count = 0;
  /// Replayable descriptions of the first max_failures divergences.
  std::vector<std::string> mismatches;
  [[nodiscard]] bool clean() const { return failure_count == 0; }
  [[nodiscard]] std::string summary() const;
};

TwinDiffReport run_twin_diff(const TwinDiffOptions& options);

}  // namespace mmr::audit
