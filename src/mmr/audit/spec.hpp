// Replayable differential-audit cases.  A CaseSpec pins everything a
// failure needs to reproduce: the arbiter (by factory name), its Rng seed,
// the geometry, and the exact candidate sequence it was driven with.  Specs
// round-trip through a line-oriented text form so shrunk failures can be
// checked in as regression corpora and replayed byte-identically.
#pragma once

#include <string>
#include <vector>

#include "mmr/arbiter/candidate.hpp"

namespace mmr::audit {

struct CaseSpec {
  std::string arbiter = "coa";
  std::uint64_t seed = 0;  ///< seed of the arbiter's private Rng
  std::uint32_t ports = 4;
  std::uint32_t levels = 1;
  /// One candidate list per arbitration step, in drive order.  Stateful
  /// arbiters (rotating pointers) see the steps in sequence from a fresh
  /// instance, so a violation at step k reproduces exactly.
  std::vector<std::vector<Candidate>> steps;

  /// Re-labels each step's levels per input to contiguous 0..k-1 (preserving
  /// candidate order) and raises `levels` if needed — the shrinker drops
  /// candidates freely and relies on this to keep steps CandidateSet-legal.
  void normalize();

  /// Builds the CandidateSet for one step (spec must be normalized).
  [[nodiscard]] CandidateSet set_for_step(std::size_t step) const;

  [[nodiscard]] std::size_t total_candidates() const;
};

/// Text round-trip.  Format (one token per line element, '#' comments):
///   arbiter coa
///   seed 42
///   ports 4
///   levels 2
///   step
///   c <input> <output> <level> <vc> <priority>
///   ...
///   end
[[nodiscard]] std::string to_text(const CaseSpec& spec);

/// Parses to_text() output; throws std::invalid_argument on malformed input.
[[nodiscard]] CaseSpec parse_case(const std::string& text);

}  // namespace mmr::audit
