// Simulation-level invariant auditor (opt-in via the `audit=` SimConfig
// override).  Piggybacks on the router tick: cheap departure-stream checks
// every cycle (per-VC FIFO order, one flit per port, departed-count
// reconciliation) and a full credit-conservation + bandwidth-accounting
// sweep every `audit_every` cycles — the same conservation law the fault
// layer's credit-resync watchdog enforces, factored into
// credit_accounted_slots() so both use one definition.  Violations abort
// via MMR_ASSERT like every other contract check in the engine.
//
// This file lives in mmr/audit but is compiled into mmr_core (see
// src/CMakeLists.txt): the auditor needs the router/NIC/link types, and
// mmr_audit proper must stay a pure arbiter-layer library.
#pragma once

#include <cstdint>
#include <vector>

#include "mmr/router/credits.hpp"
#include "mmr/router/link.hpp"
#include "mmr/router/nic.hpp"
#include "mmr/router/router.hpp"
#include "mmr/router/vcm.hpp"
#include "mmr/sim/config.hpp"

namespace mmr::mmu {
class SharedBufferMmu;
}  // namespace mmr::mmu

namespace mmr::snapshot {
class Walker;
}

namespace mmr::audit {

/// Buffer slots of (channel, vc) that are accounted for: available credits,
/// credits travelling back, flits on the wire, flits in the downstream VCM.
/// Conservation demands this equals CreditManager::capacity_per_vc(); the
/// fault layer's resync watchdog treats a persistent deficit as a leak.
[[nodiscard]] std::uint32_t credit_accounted_slots(
    const CreditManager& credits, const LinkPipeline& pipe,
    const VirtualChannelMemory& vcm, std::uint32_t vc);

/// Discipline-agnostic form: `buffered` is however many of the VC's flits
/// the router currently holds, wherever its queue discipline buffers them
/// (VC FIFO, VOQs, crosspoint buffers) — MmrRouter::vc_occupancy().
[[nodiscard]] std::uint32_t credit_accounted_slots(const CreditManager& credits,
                                                   const LinkPipeline& pipe,
                                                   std::uint32_t buffered,
                                                   std::uint32_t vc);

class SimAuditor {
 public:
  /// `config.audit_every` sets the sweep period (the caller only constructs
  /// the auditor when it is >= 1).
  explicit SimAuditor(const SimConfig& config);

  /// Called at the end of every MmrSimulation::step_one with that cycle's
  /// departures.  `mmu` is non-null in flow=shared runs; each sweep then
  /// additionally asserts the MMU's pool-accounting conservation (reserved +
  /// shared + headroom charges sum to the router's buffered occupancy).
  /// Aborts (MMR_ASSERT) on any invariant violation.
  void on_cycle(Cycle now, const MmrRouter& router,
                const std::vector<Nic>& nics,
                const std::vector<LinkPipeline>& links,
                const std::vector<MmrRouter::Departure>& departures,
                const mmu::SharedBufferMmu* mmu = nullptr);

  [[nodiscard]] std::uint64_t cycles_audited() const { return cycles_; }
  [[nodiscard]] std::uint64_t sweeps() const { return sweeps_; }

  /// Checkpoint walk: departure tails and counters.  Without this a resumed
  /// run's auditor would start blank and flag the first departure of every
  /// in-flight connection as an order violation.
  void snap(mmr::snapshot::Walker& w);

 private:
  struct VcTail {
    ConnectionId connection = kInvalidConnection;
    std::uint64_t seq = 0;
  };

  void sweep(const MmrRouter& router, const std::vector<Nic>& nics,
             const std::vector<LinkPipeline>& links,
             const mmu::SharedBufferMmu* mmu) const;

  std::uint32_t ports_;
  std::uint32_t vcs_;
  std::uint32_t period_;
  std::vector<VcTail> tails_;  ///< (input * vcs + vc) -> last departure
  std::uint64_t departed_seen_ = 0;
  std::uint64_t cycles_ = 0;
  std::uint64_t sweeps_ = 0;
  std::vector<std::uint8_t> input_used_;   ///< per-cycle scratch
  std::vector<std::uint8_t> output_used_;  ///< per-cycle scratch
};

}  // namespace mmr::audit
