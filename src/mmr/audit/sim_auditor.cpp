#include "mmr/audit/sim_auditor.hpp"

#include "mmr/snapshot/walker.hpp"

#include <algorithm>

#include "mmr/mmu/mmu.hpp"
#include "mmr/sim/assert.hpp"
#include "mmr/trace/event.hpp"
#include "mmr/trace/tracer.hpp"

namespace mmr::audit {

std::uint32_t credit_accounted_slots(const CreditManager& credits,
                                     const LinkPipeline& pipe,
                                     const VirtualChannelMemory& vcm,
                                     std::uint32_t vc) {
  return credit_accounted_slots(credits, pipe, vcm.occupancy(vc), vc);
}

std::uint32_t credit_accounted_slots(const CreditManager& credits,
                                     const LinkPipeline& pipe,
                                     std::uint32_t buffered,
                                     std::uint32_t vc) {
  return credits.credits(vc) + credits.pending_for(vc) +
         pipe.in_flight_on_vc(vc) + buffered;
}

SimAuditor::SimAuditor(const SimConfig& config)
    : ports_(config.ports),
      vcs_(config.vcs_per_link),
      period_(config.audit_every),
      tails_(static_cast<std::size_t>(config.ports) * config.vcs_per_link),
      input_used_(config.ports, 0),
      output_used_(config.ports, 0) {
  MMR_ASSERT(period_ >= 1);
}

void SimAuditor::on_cycle(Cycle now, const MmrRouter& router,
                          const std::vector<Nic>& nics,
                          const std::vector<LinkPipeline>& links,
                          const std::vector<MmrRouter::Departure>& departures,
                          const mmu::SharedBufferMmu* mmu) {
  ++cycles_;

  // The crossbar forwards at most one flit per output port per scheduling
  // cycle under every discipline.  The one-per-input law only holds for the
  // matching-based disciplines: CICQ crosspoint buffers decouple the stages,
  // so one input's flits may legitimately leave several outputs in a cycle.
  const bool matching_based =
      router.queue_discipline() != QueueDiscipline::kCicq;
  std::fill(input_used_.begin(), input_used_.end(), std::uint8_t{0});
  std::fill(output_used_.begin(), output_used_.end(), std::uint8_t{0});
  for (const MmrRouter::Departure& d : departures) {
    MMR_ASSERT(d.input < ports_ && d.output < ports_ && d.vc < vcs_);
    MMR_ASSERT_MSG(!matching_based || !input_used_[d.input],
                   "audit: two departures from one input in one cycle");
    MMR_ASSERT_MSG(!output_used_[d.output],
                   "audit: two departures onto one output in one cycle");
    input_used_[d.input] = 1;
    output_used_[d.output] = 1;

    // Per-VC FIFO order: within a VC, one connection's flits depart in
    // strictly increasing sequence order and never after flits generated
    // in this cycle's future.  A connection change on the VC (fault-layer
    // re-admission) legitimately restarts the stream.
    MMR_ASSERT_MSG(d.flit.generated_at <= now,
                   "audit: flit departed before it was generated");
    VcTail& tail = tails_[static_cast<std::size_t>(d.input) * vcs_ + d.vc];
    if (tail.connection == d.flit.connection) {
      MMR_ASSERT_MSG(d.flit.seq > tail.seq,
                     "audit: per-VC FIFO order broken (sequence regressed)");
    }
    tail.connection = d.flit.connection;
    tail.seq = d.flit.seq;
  }

  // Departed-count reconciliation: the router's lifetime counter must
  // advance by exactly the departures it reported this cycle.
  departed_seen_ += departures.size();
  MMR_ASSERT_MSG(router.flits_departed() == departed_seen_,
                 "audit: router departed-count disagrees with the "
                 "departures it reported");

  if (now % period_ == 0) {
    sweep(router, nics, links, mmu);
    ++sweeps_;
    MMR_TRACE_EVENT(trace::audit_sweep_event(now, sweeps_));
  }
}

void SimAuditor::sweep(const MmrRouter& router, const std::vector<Nic>& nics,
                       const std::vector<LinkPipeline>& links,
                       const mmu::SharedBufferMmu* mmu) const {
  MMR_ASSERT(nics.size() == ports_ && links.size() == ports_);
  std::uint64_t buffered = 0;
  for (std::uint32_t port = 0; port < ports_; ++port) {
    const Nic& nic = nics[port];
    const std::uint32_t capacity = nic.credits().capacity_per_vc();
    std::uint64_t queued = 0;
    for (std::uint32_t vc = 0; vc < vcs_; ++vc) {
      // Credit conservation: every VC buffer slot is an available credit, a
      // credit travelling back, a flit on the wire, or a flit the router
      // holds for the VC (VC FIFO, VOQs, or crosspoints, per discipline).
      // The single-router engine has no faults, so equality is exact.
      const std::uint32_t held = router.vc_occupancy(port, vc);
      MMR_ASSERT_MSG(credit_accounted_slots(nic.credits(), links[port], held,
                                            vc) == capacity,
                     "audit: credit conservation violated");
      buffered += held;
      queued += nic.queued(vc);
    }
    // NIC bandwidth accounting: everything deposited either left on the
    // link or is still queued.
    MMR_ASSERT_MSG(nic.total_queued() == nic.total_sent() + queued,
                   "audit: NIC deposited/sent/queued accounting broken");
  }
  // Router bandwidth accounting: lifetime accepted - departed - drained
  // must equal what the input buffers (plus crosspoints) hold right now.
  MMR_ASSERT_MSG(router.flits_buffered() == buffered,
                 "audit: router flit accounting disagrees with its buffers");

  // MMU pool conservation (flow=shared runs): reserved + shared + headroom
  // charges must balance to the flit against the buffered occupancy, and
  // the MMU's own books must be internally consistent.
  if (mmu != nullptr) {
    mmu->check_invariants();
    MMR_ASSERT_MSG(mmu->occupancy() == buffered,
                   "audit: mmu pool charges disagree with buffered flits");
  }
}

void SimAuditor::snap(mmr::snapshot::Walker& w) {
  namespace snap = mmr::snapshot;
  snap::walk_vector(w, tails_, [](snap::Walker& v, VcTail& tail) {
    snap::value(v, tail.connection);
    snap::value(v, tail.seq);
  });
  snap::value(w, departed_seen_);
  snap::value(w, cycles_);
  snap::value(w, sweeps_);
}

}  // namespace mmr::audit
