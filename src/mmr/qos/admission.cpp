#include "mmr/qos/admission.hpp"

#include <algorithm>
#include <cmath>

#include "mmr/snapshot/walker.hpp"
#include "mmr/trace/event.hpp"
#include "mmr/trace/tracer.hpp"

namespace mmr {

AdmissionController::AdmissionController(std::uint32_t ports,
                                         RoundAccounting rounds,
                                         double concurrency_factor)
    : ports_(ports),
      rounds_(rounds),
      concurrency_factor_(concurrency_factor),
      input_budget_(ports),
      output_budget_(ports) {
  MMR_ASSERT(ports_ > 0);
  MMR_ASSERT(concurrency_factor_ >= 1.0);
}

bool AdmissionController::fits(const LinkBudget& budget,
                               std::uint32_t mean_slots,
                               std::uint32_t peak_slots) const {
  const auto round = static_cast<std::uint64_t>(rounds_.flit_cycles_per_round());
  if (budget.mean_slots + mean_slots > round) return false;
  const double peak_budget =
      concurrency_factor_ * static_cast<double>(round);
  return static_cast<double>(budget.peak_slots + peak_slots) <= peak_budget;
}

bool AdmissionController::try_admit(ConnectionDescriptor& descriptor) {
  MMR_ASSERT(descriptor.input_link < ports_);
  MMR_ASSERT(descriptor.output_link < ports_);
  if (!descriptor.is_qos()) {
    descriptor.slots_per_round = 0;
    descriptor.peak_slots_per_round = 0;
    return true;  // best effort reserves nothing
  }

  MMR_ASSERT(descriptor.mean_bandwidth_bps > 0.0);
  MMR_ASSERT(descriptor.peak_bandwidth_bps >= descriptor.mean_bandwidth_bps);
  // A request beyond the link itself can never be honoured: reject before
  // slot conversion, where the clamp would disguise it as a full-rate
  // (round-sized) reservation that fits an empty link.
  if (rounds_.oversubscribed(descriptor.mean_bandwidth_bps)) return false;
  const std::uint32_t mean_slots =
      rounds_.slots_for_bandwidth(descriptor.mean_bandwidth_bps);
  // CBR connections have peak == mean: rule (b) then collapses into (a)
  // whenever concurrency_factor >= 1, matching the paper's CBR test.
  const std::uint32_t peak_slots =
      rounds_.slots_for_bandwidth(descriptor.peak_bandwidth_bps);

  if (!fits(input_budget_[descriptor.input_link], mean_slots, peak_slots) ||
      !fits(output_budget_[descriptor.output_link], mean_slots, peak_slots)) {
    return false;
  }

  descriptor.slots_per_round = mean_slots;
  descriptor.peak_slots_per_round = peak_slots;
  input_budget_[descriptor.input_link].mean_slots += mean_slots;
  input_budget_[descriptor.input_link].peak_slots += peak_slots;
  output_budget_[descriptor.output_link].mean_slots += mean_slots;
  output_budget_[descriptor.output_link].peak_slots += peak_slots;
  ++ledger_[{descriptor.input_link, descriptor.output_link, mean_slots,
             peak_slots}];
  MMR_TRACE_EMIT_NOW(trace::admission_event, /*admitted=*/true,
                     descriptor.input_link, descriptor.output_link,
                     descriptor.vc, descriptor.id, mean_slots);
  return true;
}

void AdmissionController::release(const ConnectionDescriptor& descriptor) {
  if (!descriptor.is_qos()) return;
  const ReservationKey key{descriptor.input_link, descriptor.output_link,
                           descriptor.slots_per_round,
                           descriptor.peak_slots_per_round};
  const auto held = ledger_.find(key);
  MMR_ASSERT_MSG(held != ledger_.end() && held->second > 0,
                 "release of a QoS reservation that was never admitted "
                 "(or was already released)");
  if (--held->second == 0) ledger_.erase(held);
  auto take = [](std::uint64_t& budget, std::uint32_t amount) {
    MMR_ASSERT(budget >= amount);
    budget -= amount;
  };
  take(input_budget_[descriptor.input_link].mean_slots,
       descriptor.slots_per_round);
  take(input_budget_[descriptor.input_link].peak_slots,
       descriptor.peak_slots_per_round);
  take(output_budget_[descriptor.output_link].mean_slots,
       descriptor.slots_per_round);
  take(output_budget_[descriptor.output_link].peak_slots,
       descriptor.peak_slots_per_round);
  MMR_TRACE_EMIT_NOW(trace::admission_event, /*admitted=*/false,
                     descriptor.input_link, descriptor.output_link,
                     descriptor.vc, descriptor.id, descriptor.slots_per_round);
}

std::uint64_t AdmissionController::outstanding_reservations() const {
  std::uint64_t total = 0;
  for (const auto& [key, count] : ledger_) total += count;
  return total;
}

std::uint32_t AdmissionController::input_mean_slots(std::uint32_t link) const {
  MMR_ASSERT(link < ports_);
  return static_cast<std::uint32_t>(input_budget_[link].mean_slots);
}

std::uint32_t AdmissionController::output_mean_slots(std::uint32_t link) const {
  MMR_ASSERT(link < ports_);
  return static_cast<std::uint32_t>(output_budget_[link].mean_slots);
}

std::uint32_t AdmissionController::input_peak_slots(std::uint32_t link) const {
  MMR_ASSERT(link < ports_);
  return static_cast<std::uint32_t>(input_budget_[link].peak_slots);
}

std::uint32_t AdmissionController::output_peak_slots(std::uint32_t link) const {
  MMR_ASSERT(link < ports_);
  return static_cast<std::uint32_t>(output_budget_[link].peak_slots);
}

double AdmissionController::max_mean_utilization() const {
  std::uint64_t busiest = 0;
  for (std::uint32_t link = 0; link < ports_; ++link) {
    busiest = std::max({busiest, input_budget_[link].mean_slots,
                        output_budget_[link].mean_slots});
  }
  return static_cast<double>(busiest) /
         static_cast<double>(rounds_.flit_cycles_per_round());
}

void AdmissionController::snap(snapshot::Walker& w) {
  const auto walk_budget = [](snapshot::Walker& v, LinkBudget& budget) {
    snapshot::value(v, budget.mean_slots);
    snapshot::value(v, budget.peak_slots);
  };
  snapshot::walk_vector(w, input_budget_, walk_budget);
  snapshot::walk_vector(w, output_budget_, walk_budget);
  // std::map walks in key order, which is deterministic; on load the ledger
  // is rebuilt entry by entry.
  std::uint64_t entries = ledger_.size();
  snapshot::value(w, entries);
  if (w.loading()) {
    ledger_.clear();
    for (std::uint64_t i = 0; i < entries; ++i) {
      ReservationKey key{};
      std::uint32_t count = 0;
      for (std::uint32_t& part : key) snapshot::value(w, part);
      snapshot::value(w, count);
      ledger_.emplace(key, count);
    }
  } else {
    for (auto& [key, count] : ledger_) {
      for (const std::uint32_t part : key) {
        std::uint32_t copy = part;
        snapshot::value(w, copy);
      }
      snapshot::value(w, count);
    }
  }
}

}  // namespace mmr
