// Connection admission control (Section 2, "Connection Set up").
//
// CBR: admitted iff the flit cycles allocated by all connections on each
// link of the path stay within the flit cycles of one round.
// VBR: admitted iff (a) the sum of *permanent* (average) bandwidth fits in a
// round AND (b) the sum of *peak* bandwidth fits in round x concurrency
// factor.  The concurrency factor trades QoS strength against the number of
// concurrently serviced connections and link utilization.
// Best-effort connections reserve nothing and are always admitted (they only
// need a free VC, which the caller guarantees).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "mmr/qos/connection.hpp"
#include "mmr/qos/rounds.hpp"

namespace mmr {

namespace snapshot {
class Walker;
}

class AdmissionController {
 public:
  AdmissionController(std::uint32_t ports, RoundAccounting rounds,
                      double concurrency_factor);

  /// Tries to admit the connection: checks the input-link and output-link
  /// budgets and, on success, fills in slots_per_round /
  /// peak_slots_per_round and commits the reservation.  Returns false (and
  /// leaves the descriptor and budgets untouched) on rejection.
  [[nodiscard]] bool try_admit(ConnectionDescriptor& descriptor);

  /// Releases a previously admitted connection's reservation.  Releasing a
  /// QoS descriptor that was never admitted here — or releasing one more
  /// often than it was admitted — is a checked error (aborts with a
  /// message) rather than a silent LinkBudget underflow.
  void release(const ConnectionDescriptor& descriptor);

  /// Outstanding QoS reservations (admitted minus released).
  [[nodiscard]] std::uint64_t outstanding_reservations() const;

  [[nodiscard]] const RoundAccounting& rounds() const { return rounds_; }
  [[nodiscard]] double concurrency_factor() const {
    return concurrency_factor_;
  }

  /// Reserved mean slots on a link (diagnostics / tests).
  [[nodiscard]] std::uint32_t input_mean_slots(std::uint32_t link) const;
  [[nodiscard]] std::uint32_t output_mean_slots(std::uint32_t link) const;
  [[nodiscard]] std::uint32_t input_peak_slots(std::uint32_t link) const;
  [[nodiscard]] std::uint32_t output_peak_slots(std::uint32_t link) const;

  /// Fraction of the round reserved (mean) on the busiest link.
  [[nodiscard]] double max_mean_utilization() const;

  /// Checkpoint walk: link budgets and the reservation ledger (both mutate
  /// as fault recovery releases and re-admits connections).
  void snap(snapshot::Walker& w);

 private:
  struct LinkBudget {
    std::uint64_t mean_slots = 0;
    std::uint64_t peak_slots = 0;
  };

  [[nodiscard]] bool fits(const LinkBudget& budget, std::uint32_t mean_slots,
                          std::uint32_t peak_slots) const;

  /// Reservation identity: {input, output, mean_slots, peak_slots}.  Slot
  /// counts are deterministic functions of the declared bandwidths (see
  /// RoundAccounting), so a descriptor re-derived for the same connection
  /// maps to the same key.
  using ReservationKey = std::array<std::uint32_t, 4>;

  std::uint32_t ports_;
  RoundAccounting rounds_;
  double concurrency_factor_;
  std::vector<LinkBudget> input_budget_;
  std::vector<LinkBudget> output_budget_;
  /// Multiset of live reservations; release() checks against it.
  std::map<ReservationKey, std::uint32_t> ledger_;
};

}  // namespace mmr
