#include "mmr/qos/priority.hpp"

#include <bit>
#include <cmath>

#include "mmr/sim/assert.hpp"

namespace mmr {

namespace {

// Saturation ceiling: far above any realistic bias yet small enough that
// priorities can be added without overflow in diagnostics.
constexpr Priority kPriorityCap = Priority{1} << 48;

}  // namespace

std::uint32_t siabp_shift(std::uint64_t age_router_cycles) {
  // bit_width(0) == 0: a flit that has not waited keeps its initial value.
  return static_cast<std::uint32_t>(std::bit_width(age_router_cycles));
}

Priority siabp_priority(std::uint32_t slots_per_round,
                        std::uint64_t age_router_cycles) {
  MMR_ASSERT(slots_per_round > 0);
  const std::uint32_t shift = siabp_shift(age_router_cycles);
  if (shift >= 48) return kPriorityCap;
  const Priority biased = static_cast<Priority>(slots_per_round) << shift;
  return biased < kPriorityCap ? biased : kPriorityCap;
}

Priority iabp_priority(double iat_router_cycles,
                       std::uint64_t age_router_cycles) {
  MMR_ASSERT(iat_router_cycles > 0.0);
  const double ratio =
      static_cast<double>(age_router_cycles) / iat_router_cycles;
  const double scaled = std::ceil(ratio * 65536.0);
  if (scaled >= static_cast<double>(kPriorityCap)) return kPriorityCap;
  // Floor at 1: an age-0 QoS flit must not tie with priority-0 best-effort
  // traffic in mixed comparisons (SIABP's floor is slots_per_round >= 1).
  return scaled < 1.0 ? Priority{1} : static_cast<Priority>(scaled);
}

Priority PriorityFunction::operator()(const QosParams& qos,
                                      std::uint64_t age_router_cycles) const {
  switch (scheme_) {
    case PriorityScheme::kSiabp:
      return siabp_priority(qos.slots_per_round, age_router_cycles);
    case PriorityScheme::kIabp:
      return iabp_priority(qos.iat_router_cycles, age_router_cycles);
    case PriorityScheme::kFifoAge:
      return age_router_cycles < kPriorityCap
                 ? static_cast<Priority>(age_router_cycles)
                 : kPriorityCap;
    case PriorityScheme::kStatic:
      return qos.slots_per_round;
  }
  MMR_ASSERT_MSG(false, "unreachable priority scheme");
  return 0;
}

}  // namespace mmr
