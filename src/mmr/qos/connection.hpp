// Connection descriptors and the connection table.  In the MMR every
// connection owns a dedicated virtual channel on each link of its (single
// router => input link, output link) path, established at setup time by a
// routing probe that reserves link bandwidth and buffer space.
#pragma once

#include <cstdint>
#include <vector>

#include "mmr/sim/assert.hpp"

namespace mmr {

namespace snapshot {
class Walker;
}

using ConnectionId = std::uint32_t;
inline constexpr ConnectionId kInvalidConnection = ~ConnectionId{0};

enum class TrafficClass : std::uint8_t {
  kCbr,         ///< constant bit rate, QoS-guaranteed
  kVbr,         ///< variable bit rate (MPEG-2 video), QoS-guaranteed
  kBestEffort,  ///< no reservation; served with leftover bandwidth
};

[[nodiscard]] const char* to_string(TrafficClass c);

struct ConnectionDescriptor {
  ConnectionId id = kInvalidConnection;
  TrafficClass traffic_class = TrafficClass::kBestEffort;
  std::uint32_t input_link = 0;   ///< NIC / physical input port
  std::uint32_t output_link = 0;  ///< destination output port
  std::uint32_t vc = 0;           ///< VC index within the input link

  double mean_bandwidth_bps = 0.0;  ///< requested average bandwidth
  double peak_bandwidth_bps = 0.0;  ///< requested peak (== mean for CBR)

  // Filled in by admission control:
  std::uint32_t slots_per_round = 0;       ///< reserved flit cycles / round
  std::uint32_t peak_slots_per_round = 0;  ///< peak flit cycles / round

  [[nodiscard]] bool is_qos() const {
    return traffic_class != TrafficClass::kBestEffort;
  }
};

/// Owns every established connection; indexed by ConnectionId.  VC numbers
/// are assigned per input link in admission order.
class ConnectionTable {
 public:
  explicit ConnectionTable(std::uint32_t ports);

  /// Registers a connection: assigns its id and its VC on the input link.
  /// Returns the id.  Aborts if the input link has no VC left (the caller
  /// must respect the vcs_per_link budget — see Workload builder).
  ConnectionId add(ConnectionDescriptor descriptor, std::uint32_t vcs_per_link);

  [[nodiscard]] std::size_t size() const { return connections_.size(); }
  [[nodiscard]] bool empty() const { return connections_.empty(); }
  [[nodiscard]] std::uint32_t ports() const { return ports_; }

  [[nodiscard]] const ConnectionDescriptor& get(ConnectionId id) const {
    MMR_ASSERT(id < connections_.size());
    return connections_[id];
  }

  [[nodiscard]] const std::vector<ConnectionDescriptor>& all() const {
    return connections_;
  }

  /// Connections whose input link is `link` (VC-ordered).
  [[nodiscard]] const std::vector<ConnectionId>& on_input_link(
      std::uint32_t link) const {
    MMR_ASSERT(link < ports_);
    return by_input_link_[link];
  }

  /// Connection occupying (input link, vc), or kInvalidConnection.
  [[nodiscard]] ConnectionId at_vc(std::uint32_t link, std::uint32_t vc) const;

  /// Sum of mean bandwidth of QoS connections on an input link, bps.
  [[nodiscard]] double qos_mean_bps_on_input(std::uint32_t link) const;

  /// Checkpoint walk.  Single-router tables are construction-time constants,
  /// but the network layer's per-router tables grow when fault recovery
  /// re-admits connections on fresh VCs — the whole table walks.
  void snap(snapshot::Walker& w);

 private:
  std::uint32_t ports_;
  std::vector<ConnectionDescriptor> connections_;
  std::vector<std::vector<ConnectionId>> by_input_link_;
};

}  // namespace mmr
