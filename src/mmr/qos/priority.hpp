// Priority biasing functions for link scheduling (Section 3.1).
//
// The key idea: a head flit's priority relates the QoS a connection
// *requested* (its bandwidth) to the QoS it is *receiving* (its queuing
// delay), so priorities grow as flits wait, and grow faster for
// high-bandwidth connections.
//
//  * IABP  — priority = queuing_delay / IAT (theoretical; needs a divider).
//  * SIABP — priority starts at the connection's reserved slots/round and is
//    doubled every time a new bit of the queuing-delay counter is set, i.e.
//    effective priority = slots << bit_width(age).  Hardware: one shifter.
//  * FIFO-age — age only (ignores bandwidth): ablation.
//  * Static — slots only (ignores waiting): ablation.
//
// Ages are counted in *router* (phit) cycles, as in the hardware.
#pragma once

#include <cstdint>

#include "mmr/arbiter/candidate.hpp"
#include "mmr/sim/config.hpp"

namespace mmr {

/// Per-connection constants the biasing functions need, precomputed at
/// connection setup.
struct QosParams {
  std::uint32_t slots_per_round = 1;  ///< SIABP initial priority
  double iat_router_cycles = 1.0;     ///< IABP denominator
};

/// SIABP shift count for a given age: the number of bits of the queuing
/// delay counter that have been set since it was last reset.
[[nodiscard]] std::uint32_t siabp_shift(std::uint64_t age_router_cycles);

/// SIABP priority with saturation (the hardware register is finite; we
/// saturate at 2^48 so comparisons never overflow when summed).
[[nodiscard]] Priority siabp_priority(std::uint32_t slots_per_round,
                                      std::uint64_t age_router_cycles);

/// IABP priority scaled to an integer (x 2^16) so that all schemes share the
/// Priority type.  A floating divider in hardware terms.
[[nodiscard]] Priority iabp_priority(double iat_router_cycles,
                                     std::uint64_t age_router_cycles);

/// Evaluates the configured scheme.
class PriorityFunction {
 public:
  explicit PriorityFunction(PriorityScheme scheme) : scheme_(scheme) {}

  [[nodiscard]] PriorityScheme scheme() const { return scheme_; }

  [[nodiscard]] Priority operator()(const QosParams& qos,
                                    std::uint64_t age_router_cycles) const;

 private:
  PriorityScheme scheme_;
};

}  // namespace mmr
