#include "mmr/qos/connection.hpp"

#include "mmr/snapshot/walker.hpp"

namespace mmr {

const char* to_string(TrafficClass c) {
  switch (c) {
    case TrafficClass::kCbr: return "CBR";
    case TrafficClass::kVbr: return "VBR";
    case TrafficClass::kBestEffort: return "BE";
  }
  return "?";
}

ConnectionTable::ConnectionTable(std::uint32_t ports)
    : ports_(ports), by_input_link_(ports) {
  MMR_ASSERT(ports_ > 0);
}

ConnectionId ConnectionTable::add(ConnectionDescriptor descriptor,
                                  std::uint32_t vcs_per_link) {
  MMR_ASSERT(descriptor.input_link < ports_);
  MMR_ASSERT(descriptor.output_link < ports_);
  auto& on_link = by_input_link_[descriptor.input_link];
  MMR_ASSERT_MSG(on_link.size() < vcs_per_link,
                 "input link out of virtual channels");
  descriptor.id = static_cast<ConnectionId>(connections_.size());
  descriptor.vc = static_cast<std::uint32_t>(on_link.size());
  on_link.push_back(descriptor.id);
  connections_.push_back(descriptor);
  return descriptor.id;
}

ConnectionId ConnectionTable::at_vc(std::uint32_t link,
                                    std::uint32_t vc) const {
  MMR_ASSERT(link < ports_);
  const auto& on_link = by_input_link_[link];
  if (vc >= on_link.size()) return kInvalidConnection;
  return on_link[vc];
}

double ConnectionTable::qos_mean_bps_on_input(std::uint32_t link) const {
  MMR_ASSERT(link < ports_);
  double total = 0.0;
  for (ConnectionId id : by_input_link_[link]) {
    const ConnectionDescriptor& c = connections_[id];
    if (c.is_qos()) total += c.mean_bandwidth_bps;
  }
  return total;
}

void ConnectionTable::snap(snapshot::Walker& w) {
  snapshot::walk_vector(
      w, connections_, [](snapshot::Walker& v, ConnectionDescriptor& d) {
        snapshot::value(v, d.id);
        snapshot::value(v, d.traffic_class);
        snapshot::value(v, d.input_link);
        snapshot::value(v, d.output_link);
        snapshot::value(v, d.vc);
        snapshot::value(v, d.mean_bandwidth_bps);
        snapshot::value(v, d.peak_bandwidth_bps);
        snapshot::value(v, d.slots_per_round);
        snapshot::value(v, d.peak_slots_per_round);
      });
  snapshot::walk_vector(w, by_input_link_,
                        [](snapshot::Walker& v, std::vector<ConnectionId>& l) {
                          snapshot::walk_vector_pod(v, l);
                        });
}

}  // namespace mmr
