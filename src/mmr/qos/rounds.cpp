#include "mmr/qos/rounds.hpp"

#include <cmath>

#include "mmr/sim/assert.hpp"

namespace mmr {

RoundAccounting::RoundAccounting(std::uint32_t flit_cycles_per_round,
                                 TimeBase time_base)
    : round_(flit_cycles_per_round), time_base_(time_base) {
  MMR_ASSERT(round_ > 0);
}

std::uint32_t RoundAccounting::slots_for_bandwidth(double bps) const {
  MMR_ASSERT(bps >= 0.0);
  if (bps == 0.0) return 0;
  const double fraction = time_base_.load_fraction(bps);
  const double slots = std::ceil(fraction * static_cast<double>(round_));
  // A round only holds round_ slots: a reservation can never exceed the
  // link.  Callers that must distinguish "full link" from "over the link"
  // (the admission boundary) check oversubscribed() before converting.
  const double clamped =
      std::fmin(static_cast<double>(round_), std::fmax(1.0, slots));
  return static_cast<std::uint32_t>(clamped);
}

bool RoundAccounting::oversubscribed(double bps) const {
  MMR_ASSERT(bps >= 0.0);
  return time_base_.load_fraction(bps) > 1.0;
}

double RoundAccounting::bandwidth_for_slots(std::uint32_t slots) const {
  return time_base_.link_bandwidth_bps() * static_cast<double>(slots) /
         static_cast<double>(round_);
}

double RoundAccounting::round_seconds() const {
  return time_base_.flit_cycle_seconds() * static_cast<double>(round_);
}

double RoundAccounting::iat_router_cycles(double bps) const {
  MMR_ASSERT(bps > 0.0);
  const double seconds_per_flit =
      static_cast<double>(time_base_.flit_bits()) / bps;
  return seconds_per_flit / time_base_.router_cycle_seconds();
}

}  // namespace mmr
