// Round / frame bandwidth accounting (Section 2, "Connection Set up").
// Link and switch-port bandwidth are split into flit cycles; flit cycles are
// grouped into rounds whose length is an integer multiple of the number of
// virtual channels per link.  A connection's reservation is expressed as a
// number of flit cycles ("slots") per round.
#pragma once

#include <cstdint>

#include "mmr/sim/time.hpp"

namespace mmr {

class RoundAccounting {
 public:
  RoundAccounting(std::uint32_t flit_cycles_per_round, TimeBase time_base);

  [[nodiscard]] std::uint32_t flit_cycles_per_round() const {
    return round_;
  }

  /// Slots per round needed to carry `bps` average bandwidth.  Rounds up;
  /// any positive bandwidth reserves at least one slot (the scheduling
  /// granularity of the hardware) and at most a full round (the link has no
  /// more slots to give — see oversubscribed() for the explicit check).
  [[nodiscard]] std::uint32_t slots_for_bandwidth(double bps) const;

  /// True when `bps` exceeds the link: its load fraction is > 1, so no slot
  /// count in a round can carry it.  The admission boundary rejects such
  /// requests outright instead of letting the clamped slot count pass as a
  /// full-rate reservation.
  [[nodiscard]] bool oversubscribed(double bps) const;

  /// Bandwidth (bps) that `slots` per round actually provide.
  [[nodiscard]] double bandwidth_for_slots(std::uint32_t slots) const;

  /// Round duration in seconds.
  [[nodiscard]] double round_seconds() const;

  /// Mean flit inter-arrival time, in *router* (phit) cycles, of a
  /// connection with the given average bandwidth — the IAT that IABP's
  /// priority ratio divides by.
  [[nodiscard]] double iat_router_cycles(double bps) const;

 private:
  std::uint32_t round_;
  TimeBase time_base_;
};

}  // namespace mmr
