#include "mmr/arbiter/greedy_priority.hpp"

#include "mmr/snapshot/walker.hpp"

#include <algorithm>
#include <numeric>

namespace mmr {

GreedyPriorityArbiter::GreedyPriorityArbiter(std::uint32_t ports, Rng rng)
    : ports_(ports), rng_(rng) {
  MMR_ASSERT(ports_ > 0);
}

void GreedyPriorityArbiter::arbitrate_into(const CandidateSet& candidates,
                                           Matching& matching) {
  MMR_ASSERT(candidates.ports() == ports_);
  matching.reset(ports_);
  const auto& all = candidates.all();
  if (all.empty()) return;

  order_.resize(all.size());
  std::iota(order_.begin(), order_.end(), 0u);
  // Random shuffle first so that equal priorities are granted in random
  // order after the stable sort.
  rng_.shuffle(order_);
  std::stable_sort(order_.begin(), order_.end(),
                   [&all](std::uint32_t a, std::uint32_t b) {
                     return all[a].priority > all[b].priority;
                   });

  for (std::uint32_t idx : order_) {
    const Candidate& c = all[idx];
    if (matching.input_matched(c.input) || matching.output_matched(c.output))
      continue;
    matching.match(c.input, c.output, static_cast<std::int32_t>(idx));
  }
}

void GreedyPriorityArbiter::snap(snapshot::Walker& w) { rng_.snap(w); }

}  // namespace mmr
