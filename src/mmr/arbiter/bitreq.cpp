#include "mmr/arbiter/bitreq.hpp"

#include "mmr/snapshot/walker.hpp"

#include <algorithm>

#include "mmr/perf/probe.hpp"

namespace mmr {

std::int32_t bits_first_cyclic(const std::uint64_t* words,
                               std::uint32_t word_count, std::uint32_t start) {
  const std::uint32_t start_word = start >> 6;
  const std::uint32_t start_bit = start & 63u;
  const std::uint64_t above = ~std::uint64_t{0} << start_bit;
  std::uint64_t w = words[start_word] & above;
  if (w != 0)
    return static_cast<std::int32_t>(
        start_word * 64 + static_cast<std::uint32_t>(std::countr_zero(w)));
  for (std::uint32_t k = start_word + 1; k < word_count; ++k) {
    if (words[k] != 0)
      return static_cast<std::int32_t>(
          k * 64 + static_cast<std::uint32_t>(std::countr_zero(words[k])));
  }
  for (std::uint32_t k = 0; k < start_word; ++k) {
    if (words[k] != 0)
      return static_cast<std::int32_t>(
          k * 64 + static_cast<std::uint32_t>(std::countr_zero(words[k])));
  }
  w = words[start_word] & ~above;
  if (w != 0)
    return static_cast<std::int32_t>(
        start_word * 64 + static_cast<std::uint32_t>(std::countr_zero(w)));
  return -1;
}

void BitRequestMatrix::build(const CandidateSet& candidates) {
  const std::uint32_t ports = candidates.ports();
  MMR_ASSERT(ports <= kMaxPorts);
  if (ports != ports_) {
    MMR_PERF_COUNT(perf::Counter::kScratchRealloc, 1);
    ports_ = ports;
    words_ = bit_words(ports);
    in_rows_.assign(static_cast<std::size_t>(ports_) * words_, 0);
    out_rows_.assign(static_cast<std::size_t>(ports_) * words_, 0);
    in_live_.assign(words_, 0);
    out_live_.assign(words_, 0);
    cell_.assign(static_cast<std::size_t>(ports_) * ports_, -1);
  } else {
    // Clear only the cells the previous build occupied (its in_rows_ bits),
    // then zero the rows themselves — word-parallel, request-proportional.
    for (std::uint32_t input = 0; input < ports_; ++input) {
      std::int32_t* row = cell_.data() + static_cast<std::size_t>(input) * ports_;
      const std::uint64_t* bits_row = outputs_of(input);
      for (std::uint32_t w = 0; w < words_; ++w) {
        std::uint64_t bits = bits_row[w];
        const std::uint32_t base = w * kBitsPerWord;
        while (bits != 0) {
          row[base + static_cast<std::uint32_t>(std::countr_zero(bits))] = -1;
          bits &= bits - 1;
        }
      }
    }
    std::fill(in_rows_.begin(), in_rows_.end(), 0);
    std::fill(out_rows_.begin(), out_rows_.end(), 0);
    std::fill(in_live_.begin(), in_live_.end(), 0);
    std::fill(out_live_.begin(), out_live_.end(), 0);
  }

  // Level-collapse: when several candidate levels of one input request the
  // same output, keep the lowest level (matches the scan engines exactly).
  const auto& all = candidates.all();
  for (std::size_t idx = 0; idx < all.size(); ++idx) {
    const Candidate& c = all[idx];
    std::int32_t& cell =
        cell_[static_cast<std::size_t>(c.input) * ports_ + c.output];
    if (cell == -1) {
      cell = static_cast<std::int32_t>(idx);
      bits_set(in_rows_.data() + static_cast<std::size_t>(c.input) * words_,
               c.output);
      bits_set(out_rows_.data() + static_cast<std::size_t>(c.output) * words_,
               c.input);
      bits_set(in_live_.data(), c.input);
      bits_set(out_live_.data(), c.output);
    } else if (c.level < all[static_cast<std::size_t>(cell)].level) {
      cell = static_cast<std::int32_t>(idx);
    }
  }
}

void BitRequestMatrix::snap(snapshot::Walker& w) {
  snapshot::value(w, ports_);
  snapshot::value(w, words_);
  snapshot::walk_vector_pod(w, in_rows_);
  snapshot::walk_vector_pod(w, out_rows_);
  snapshot::walk_vector_pod(w, in_live_);
  snapshot::walk_vector_pod(w, out_live_);
  snapshot::walk_vector_pod(w, cell_);
}

}  // namespace mmr
