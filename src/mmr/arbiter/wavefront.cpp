#include "mmr/arbiter/wavefront.hpp"

#include "mmr/snapshot/walker.hpp"

#include <algorithm>

#include "mmr/trace/event.hpp"
#include "mmr/trace/tracer.hpp"

namespace mmr {

namespace detail {

void collapse_requests(const CandidateSet& candidates, std::uint32_t ports,
                       std::vector<std::int32_t>& request) {
  // When several candidate levels of one input request the same output,
  // keep the lowest level (the VC the link scheduler ranked highest) — the
  // hardware would transmit that one.
  request.assign(static_cast<std::size_t>(ports) * ports, -1);
  const auto& all = candidates.all();
  for (std::size_t idx = 0; idx < all.size(); ++idx) {
    const Candidate& c = all[idx];
    std::int32_t& cell =
        request[static_cast<std::size_t>(c.input) * ports + c.output];
    if (cell == -1 || c.level < all[static_cast<std::size_t>(cell)].level) {
      cell = static_cast<std::int32_t>(idx);
    }
  }
}

}  // namespace detail

WaveFrontArbiter::WaveFrontArbiter(std::uint32_t ports)
    : ports_(ports), words_(bit_words(ports)) {
  MMR_ASSERT(ports_ > 0);
  MMR_ASSERT(ports_ <= kMaxPorts);
}

void WaveFrontArbiter::arbitrate_into(const CandidateSet& candidates,
                                      Matching& matching) {
  MMR_ASSERT(candidates.ports() == ports_);
  matching.reset(ports_);
  const std::uint32_t offset = offset_;
  offset_ = offset_ + 1 == ports_ ? 0 : offset_ + 1;
  requests_.build(candidates);

  // Rotated row coordinates: wave row r corresponds to physical input
  // (r + offset) mod P, so the corner starts at input `offset` and the sweep
  // is otherwise the standard partial anti-diagonal walk.  free_rows_ holds
  // the *rotated* indices of inputs that still have a pending request and no
  // grant; free_cols_ the physical outputs likewise.
  free_rows_.assign(words_, 0);
  free_cols_.assign(words_, 0);
  std::copy_n(requests_.live_outputs(), words_, free_cols_.data());
  {
    const std::uint64_t* live = requests_.live_inputs();
    for (std::uint32_t w = 0; w < words_; ++w) {
      std::uint64_t bits = live[w];
      const std::uint32_t base = w * kBitsPerWord;
      while (bits != 0) {
        const std::uint32_t input =
            base + static_cast<std::uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::uint32_t rotated =
            input >= offset ? input - offset : input + ports_ - offset;
        bits_set(free_rows_.data(), rotated);
      }
    }
  }

  // 2P-1 partial anti-diagonals row + col == wave, from the rotated corner.
  for (std::uint32_t wave = 0; wave <= 2 * (ports_ - 1); ++wave) {
    const std::uint32_t r_begin = wave < ports_ ? 0 : wave - (ports_ - 1);
    const std::uint32_t r_end = wave < ports_ ? wave : ports_ - 1;
    // ctz walk over the free rotated rows clipped to [r_begin, r_end].
    const std::uint32_t w_begin = r_begin >> 6;
    const std::uint32_t w_end = r_end >> 6;
    for (std::uint32_t w = w_begin; w <= w_end; ++w) {
      std::uint64_t bits = free_rows_[w];
      if (w == w_begin) bits &= ~std::uint64_t{0} << (r_begin & 63u);
      if (w == w_end && (r_end & 63u) != 63u)
        bits &= (std::uint64_t{1} << ((r_end & 63u) + 1)) - 1;
      const std::uint32_t base = w * kBitsPerWord;
      while (bits != 0) {
        const std::uint32_t row =
            base + static_cast<std::uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::uint32_t col = wave - row;
        if (!bits_test(free_cols_.data(), col)) continue;
        const std::uint32_t input =
            row + offset >= ports_ ? row + offset - ports_ : row + offset;
        if (!bits_test(requests_.outputs_of(input), col)) continue;
        const std::int32_t cell = requests_.cell(input, col);
        matching.match(input, col, cell);
        bits_clear(free_rows_.data(), row);
        bits_clear(free_cols_.data(), col);
        if (MMR_TRACE_ON()) {
          const Candidate& granted =
              candidates.at(static_cast<std::size_t>(cell));
          MMR_TRACE_EMIT_NOW(trace::grant_reason_event, input, col, granted.vc,
                             granted.level, granted.priority, wave);
        }
      }
    }
  }
}

WaveFrontScanArbiter::WaveFrontScanArbiter(std::uint32_t ports, bool rotate)
    : ports_(ports), rotate_(rotate) {
  MMR_ASSERT(ports_ > 0);
}

void WaveFrontScanArbiter::arbitrate_into(const CandidateSet& candidates,
                                          Matching& matching) {
  MMR_ASSERT(candidates.ports() == ports_);
  matching.reset(ports_);
  detail::collapse_requests(candidates, ports_, request_);
  const std::uint32_t offset = offset_;
  if (rotate_) offset_ = offset_ + 1 == ports_ ? 0 : offset_ + 1;

  // 2P-1 partial anti-diagonals row + col == wave; row r is physical input
  // (r + offset) mod P (offset stays 0 for the legacy fixed corner).
  for (std::uint32_t wave = 0; wave <= 2 * (ports_ - 1); ++wave) {
    const std::uint32_t r_begin = wave < ports_ ? 0 : wave - (ports_ - 1);
    const std::uint32_t r_end = wave < ports_ ? wave : ports_ - 1;
    for (std::uint32_t row = r_begin; row <= r_end; ++row) {
      const std::uint32_t j = wave - row;
      const std::uint32_t i =
          row + offset >= ports_ ? row + offset - ports_ : row + offset;
      if (matching.input_matched(i) || matching.output_matched(j)) continue;
      const std::int32_t cell =
          request_[static_cast<std::size_t>(i) * ports_ + j];
      if (cell == -1) continue;
      matching.match(i, j, cell);
      if (MMR_TRACE_ON()) {
        const Candidate& granted =
            candidates.at(static_cast<std::size_t>(cell));
        MMR_TRACE_EMIT_NOW(trace::grant_reason_event, i, j, granted.vc,
                           granted.level, granted.priority, wave);
      }
    }
  }
}

WrappedWaveFrontArbiter::WrappedWaveFrontArbiter(std::uint32_t ports)
    : ports_(ports) {
  MMR_ASSERT(ports_ > 0);
}

void WrappedWaveFrontArbiter::arbitrate_into(const CandidateSet& candidates,
                                             Matching& matching) {
  MMR_ASSERT(candidates.ports() == ports_);
  matching.reset(ports_);
  detail::collapse_requests(candidates, ports_, request_);

  // P wrapped anti-diagonals: wave w processes cells with
  // (i + j) mod P == (start + w) mod P.
  for (std::uint32_t wave = 0; wave < ports_; ++wave) {
    const std::uint32_t diag = (start_ + wave) % ports_;
    for (std::uint32_t i = 0; i < ports_; ++i) {
      const std::uint32_t j = (diag + ports_ - i) % ports_;
      if (matching.input_matched(i) || matching.output_matched(j)) continue;
      const std::int32_t cell =
          request_[static_cast<std::size_t>(i) * ports_ + j];
      if (cell == -1) continue;
      matching.match(i, j, cell);
      if (MMR_TRACE_ON()) {
        const Candidate& granted =
            candidates.at(static_cast<std::size_t>(cell));
        MMR_TRACE_EMIT_NOW(trace::grant_reason_event, i, j, granted.vc,
                           granted.level, granted.priority, diag);
      }
    }
  }

  start_ = (start_ + 1) % ports_;
}

void WaveFrontArbiter::snap(snapshot::Walker& w) {
  snapshot::value(w, offset_);
  requests_.snap(w);
}

void WaveFrontScanArbiter::snap(snapshot::Walker& w) {
  snapshot::value(w, offset_);
}

void WrappedWaveFrontArbiter::snap(snapshot::Walker& w) {
  snapshot::value(w, start_);
}

}  // namespace mmr
