#include "mmr/arbiter/wavefront.hpp"

#include "mmr/trace/event.hpp"
#include "mmr/trace/tracer.hpp"

namespace mmr {

namespace detail {

void collapse_requests(const CandidateSet& candidates, std::uint32_t ports,
                       std::vector<std::int32_t>& request) {
  // When several candidate levels of one input request the same output,
  // keep the lowest level (the VC the link scheduler ranked highest) — the
  // hardware would transmit that one.
  request.assign(static_cast<std::size_t>(ports) * ports, -1);
  const auto& all = candidates.all();
  for (std::size_t idx = 0; idx < all.size(); ++idx) {
    const Candidate& c = all[idx];
    std::int32_t& cell =
        request[static_cast<std::size_t>(c.input) * ports + c.output];
    if (cell == -1 || c.level < all[static_cast<std::size_t>(cell)].level) {
      cell = static_cast<std::int32_t>(idx);
    }
  }
}

}  // namespace detail

WaveFrontArbiter::WaveFrontArbiter(std::uint32_t ports) : ports_(ports) {
  MMR_ASSERT(ports_ > 0);
}

void WaveFrontArbiter::arbitrate_into(const CandidateSet& candidates,
                                      Matching& matching) {
  MMR_ASSERT(candidates.ports() == ports_);
  matching.reset(ports_);
  detail::collapse_requests(candidates, ports_, request_);

  // 2P-1 partial anti-diagonals i + j == wave, from the top-left corner.
  for (std::uint32_t wave = 0; wave <= 2 * (ports_ - 1); ++wave) {
    const std::uint32_t i_begin = wave < ports_ ? 0 : wave - (ports_ - 1);
    const std::uint32_t i_end = wave < ports_ ? wave : ports_ - 1;
    for (std::uint32_t i = i_begin; i <= i_end; ++i) {
      const std::uint32_t j = wave - i;
      if (matching.input_matched(i) || matching.output_matched(j)) continue;
      const std::int32_t cell =
          request_[static_cast<std::size_t>(i) * ports_ + j];
      if (cell == -1) continue;
      matching.match(i, j, cell);
      if (MMR_TRACE_ON()) {
        const Candidate& granted =
            candidates.at(static_cast<std::size_t>(cell));
        MMR_TRACE_EMIT_NOW(trace::grant_reason_event, i, j, granted.vc,
                           granted.level, granted.priority, wave);
      }
    }
  }
}

WrappedWaveFrontArbiter::WrappedWaveFrontArbiter(std::uint32_t ports)
    : ports_(ports) {
  MMR_ASSERT(ports_ > 0);
}

void WrappedWaveFrontArbiter::arbitrate_into(const CandidateSet& candidates,
                                             Matching& matching) {
  MMR_ASSERT(candidates.ports() == ports_);
  matching.reset(ports_);
  detail::collapse_requests(candidates, ports_, request_);

  // P wrapped anti-diagonals: wave w processes cells with
  // (i + j) mod P == (start + w) mod P.
  for (std::uint32_t wave = 0; wave < ports_; ++wave) {
    const std::uint32_t diag = (start_ + wave) % ports_;
    for (std::uint32_t i = 0; i < ports_; ++i) {
      const std::uint32_t j = (diag + ports_ - i) % ports_;
      if (matching.input_matched(i) || matching.output_matched(j)) continue;
      const std::int32_t cell =
          request_[static_cast<std::size_t>(i) * ports_ + j];
      if (cell == -1) continue;
      matching.match(i, j, cell);
      if (MMR_TRACE_ON()) {
        const Candidate& granted =
            candidates.at(static_cast<std::size_t>(cell));
        MMR_TRACE_EMIT_NOW(trace::grant_reason_event, i, j, granted.vc,
                           granted.level, granted.priority, diag);
      }
    }
  }

  start_ = (start_ + 1) % ports_;
}

}  // namespace mmr
