#include "mmr/arbiter/maxmatch.hpp"

#include <limits>
#include <queue>

namespace mmr {

namespace {

constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

/// Hopcroft-Karp over a bipartite graph with `n` nodes per side.
/// Returns pair vectors (match_l, match_r) with kInf for unmatched.
struct HopcroftKarp {
  std::uint32_t n;
  const std::vector<std::vector<std::uint32_t>>& adj;
  std::vector<std::uint32_t> match_l, match_r, dist;

  explicit HopcroftKarp(std::uint32_t n_,
                        const std::vector<std::vector<std::uint32_t>>& adj_)
      : n(n_), adj(adj_), match_l(n, kInf), match_r(n, kInf), dist(n, kInf) {}

  bool bfs() {
    std::queue<std::uint32_t> queue;
    for (std::uint32_t u = 0; u < n; ++u) {
      if (match_l[u] == kInf) {
        dist[u] = 0;
        queue.push(u);
      } else {
        dist[u] = kInf;
      }
    }
    bool reachable_free = false;
    while (!queue.empty()) {
      const std::uint32_t u = queue.front();
      queue.pop();
      for (std::uint32_t v : adj[u]) {
        const std::uint32_t w = match_r[v];
        if (w == kInf) {
          reachable_free = true;
        } else if (dist[w] == kInf) {
          dist[w] = dist[u] + 1;
          queue.push(w);
        }
      }
    }
    return reachable_free;
  }

  bool dfs(std::uint32_t u) {
    for (std::uint32_t v : adj[u]) {
      const std::uint32_t w = match_r[v];
      if (w == kInf || (dist[w] == dist[u] + 1 && dfs(w))) {
        match_l[u] = v;
        match_r[v] = u;
        return true;
      }
    }
    dist[u] = kInf;
    return false;
  }

  std::uint32_t run() {
    std::uint32_t size = 0;
    while (bfs()) {
      for (std::uint32_t u = 0; u < n; ++u) {
        if (match_l[u] == kInf && dfs(u)) ++size;
      }
    }
    return size;
  }
};

}  // namespace

MaxMatchArbiter::MaxMatchArbiter(std::uint32_t ports) : ports_(ports) {
  MMR_ASSERT(ports_ > 0);
}

void MaxMatchArbiter::arbitrate_into(const CandidateSet& candidates,
                                     Matching& matching) {
  MMR_ASSERT(candidates.ports() == ports_);
  matching.reset(ports_);
  const auto& all = candidates.all();
  if (all.empty()) return;

  // Deduplicate (input, output) pairs, remembering the best candidate
  // (lowest level, i.e. highest link-scheduler rank) per pair.
  std::vector<std::int32_t> pair_candidate(
      static_cast<std::size_t>(ports_) * ports_, -1);
  std::vector<std::vector<std::uint32_t>> adj(ports_);
  for (std::size_t idx = 0; idx < all.size(); ++idx) {
    const Candidate& c = all[idx];
    std::int32_t& cell =
        pair_candidate[static_cast<std::size_t>(c.input) * ports_ + c.output];
    if (cell == -1) {
      adj[c.input].push_back(c.output);
      cell = static_cast<std::int32_t>(idx);
    } else if (c.level < all[static_cast<std::size_t>(cell)].level) {
      cell = static_cast<std::int32_t>(idx);
    }
  }

  HopcroftKarp hk(ports_, adj);
  hk.run();
  for (std::uint32_t in = 0; in < ports_; ++in) {
    if (hk.match_l[in] == kInf) continue;
    const std::uint32_t out = hk.match_l[in];
    const std::int32_t cell =
        pair_candidate[static_cast<std::size_t>(in) * ports_ + out];
    MMR_ASSERT(cell != -1);
    matching.match(in, out, cell);
  }
}

std::uint32_t MaxMatchArbiter::max_matching_size(
    std::uint32_t ports, const std::vector<std::vector<std::uint32_t>>& adj) {
  MMR_ASSERT(adj.size() == ports);
  HopcroftKarp hk(ports, adj);
  return hk.run();
}

}  // namespace mmr
