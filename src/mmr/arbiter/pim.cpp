#include "mmr/arbiter/pim.hpp"

#include <bit>

namespace mmr {

PimArbiter::PimArbiter(std::uint32_t ports, Rng rng, std::uint32_t iterations)
    : ports_(ports),
      rng_(rng),
      iterations_(iterations != 0 ? iterations : std::bit_width(ports) + 1u) {
  MMR_ASSERT(ports_ > 0);
}

void PimArbiter::arbitrate_into(const CandidateSet& candidates,
                                Matching& matching) {
  MMR_ASSERT(candidates.ports() == ports_);
  matching.reset(ports_);

  request_.assign(static_cast<std::size_t>(ports_) * ports_, -1);
  const auto& all = candidates.all();
  for (std::size_t idx = 0; idx < all.size(); ++idx) {
    const Candidate& c = all[idx];
    std::int32_t& cell =
        request_[static_cast<std::size_t>(c.input) * ports_ + c.output];
    if (cell == -1 || c.level < all[static_cast<std::size_t>(cell)].level)
      cell = static_cast<std::int32_t>(idx);
  }

  std::vector<std::int32_t> grant_of_input(ports_);
  std::vector<std::uint32_t> grants_seen(ports_);
  for (std::uint32_t iter = 0; iter < iterations_; ++iter) {
    std::fill(grant_of_input.begin(), grant_of_input.end(), -1);
    std::fill(grants_seen.begin(), grants_seen.end(), 0u);
    bool any_grant = false;
    // Grant: each free output picks uniformly among requesting free inputs
    // (single pass reservoir sampling).
    for (std::uint32_t out = 0; out < ports_; ++out) {
      if (matching.output_matched(out)) continue;
      std::int32_t pick = -1;
      std::uint32_t seen = 0;
      for (std::uint32_t in = 0; in < ports_; ++in) {
        if (matching.input_matched(in)) continue;
        if (request_[static_cast<std::size_t>(in) * ports_ + out] == -1)
          continue;
        ++seen;
        if (rng_.uniform(seen) == 0) pick = static_cast<std::int32_t>(in);
      }
      if (pick == -1) continue;
      any_grant = true;
      // Accept: each input picks uniformly among the grants it received —
      // realised as reservoir sampling while grants stream in.
      const auto in = static_cast<std::uint32_t>(pick);
      ++grants_seen[in];
      if (rng_.uniform(grants_seen[in]) == 0)
        grant_of_input[in] = static_cast<std::int32_t>(out);
    }
    if (!any_grant) break;
    for (std::uint32_t in = 0; in < ports_; ++in) {
      if (grant_of_input[in] == -1) continue;
      const auto out = static_cast<std::uint32_t>(grant_of_input[in]);
      const std::int32_t cell =
          request_[static_cast<std::size_t>(in) * ports_ + out];
      matching.match(in, out, cell);
    }
  }
}

}  // namespace mmr
