#include "mmr/arbiter/pim.hpp"

#include "mmr/snapshot/walker.hpp"

#include <algorithm>
#include <bit>

namespace mmr {

PimArbiter::PimArbiter(std::uint32_t ports, Rng rng, std::uint32_t iterations)
    : ports_(ports),
      words_(bit_words(ports)),
      rng_(rng),
      iterations_(iterations != 0 ? iterations : std::bit_width(ports) + 1u) {
  MMR_ASSERT(ports_ > 0);
  MMR_ASSERT(ports_ <= kMaxPorts);
}

void PimArbiter::arbitrate_into(const CandidateSet& candidates,
                                Matching& matching) {
  MMR_ASSERT(candidates.ports() == ports_);
  matching.reset(ports_);
  requests_.build(candidates);

  free_in_.assign(words_, 0);
  free_out_.assign(words_, 0);
  std::copy_n(requests_.live_inputs(), words_, free_in_.data());
  std::copy_n(requests_.live_outputs(), words_, free_out_.data());
  scratch_.resize(words_);
  granted_.resize(words_);
  grant_of_input_.resize(ports_);
  grants_seen_.resize(ports_);

  for (std::uint32_t iter = 0; iter < iterations_; ++iter) {
    std::fill(granted_.begin(), granted_.end(), 0);
    std::fill(grants_seen_.begin(), grants_seen_.end(), 0u);
    bool any_grant = false;
    // Grant: each free output picks uniformly among requesting free inputs
    // (single pass reservoir sampling).  Set bits iterate in ascending
    // (output, input) order, so the reservoir consumes RNG draws exactly as
    // the dense scan does — the matchings are bit-identical.
    for (std::uint32_t w = 0; w < words_; ++w) {
      std::uint64_t outs = free_out_[w];
      const std::uint32_t base = w * kBitsPerWord;
      while (outs != 0) {
        const std::uint32_t out =
            base + static_cast<std::uint32_t>(std::countr_zero(outs));
        outs &= outs - 1;
        const std::uint64_t* row = requests_.inputs_of(out);
        std::int32_t pick = -1;
        std::uint32_t seen = 0;
        for (std::uint32_t k = 0; k < words_; ++k) {
          std::uint64_t ins = row[k] & free_in_[k];
          const std::uint32_t in_base = k * kBitsPerWord;
          while (ins != 0) {
            const std::uint32_t in =
                in_base + static_cast<std::uint32_t>(std::countr_zero(ins));
            ins &= ins - 1;
            ++seen;
            if (rng_.uniform(seen) == 0) pick = static_cast<std::int32_t>(in);
          }
        }
        if (pick == -1) continue;
        any_grant = true;
        // Accept: each input picks uniformly among the grants it received —
        // realised as reservoir sampling while grants stream in.
        const auto in = static_cast<std::uint32_t>(pick);
        ++grants_seen_[in];
        if (rng_.uniform(grants_seen_[in]) == 0) {
          grant_of_input_[in] = static_cast<std::int32_t>(out);
          bits_set(granted_.data(), in);
        }
      }
    }
    if (!any_grant) break;
    for (std::uint32_t w = 0; w < words_; ++w) {
      std::uint64_t ins = granted_[w];
      const std::uint32_t base = w * kBitsPerWord;
      while (ins != 0) {
        const std::uint32_t in =
            base + static_cast<std::uint32_t>(std::countr_zero(ins));
        ins &= ins - 1;
        const auto out = static_cast<std::uint32_t>(grant_of_input_[in]);
        const std::int32_t cell = requests_.cell(in, out);
        matching.match(in, out, cell);
        bits_clear(free_in_.data(), in);
        bits_clear(free_out_.data(), out);
      }
    }
  }
}

PimScanArbiter::PimScanArbiter(std::uint32_t ports, Rng rng,
                               std::uint32_t iterations)
    : ports_(ports),
      rng_(rng),
      iterations_(iterations != 0 ? iterations : std::bit_width(ports) + 1u) {
  MMR_ASSERT(ports_ > 0);
}

void PimScanArbiter::arbitrate_into(const CandidateSet& candidates,
                                    Matching& matching) {
  MMR_ASSERT(candidates.ports() == ports_);
  matching.reset(ports_);

  request_.assign(static_cast<std::size_t>(ports_) * ports_, -1);
  const auto& all = candidates.all();
  for (std::size_t idx = 0; idx < all.size(); ++idx) {
    const Candidate& c = all[idx];
    std::int32_t& cell =
        request_[static_cast<std::size_t>(c.input) * ports_ + c.output];
    if (cell == -1 || c.level < all[static_cast<std::size_t>(cell)].level)
      cell = static_cast<std::int32_t>(idx);
  }

  std::vector<std::int32_t> grant_of_input(ports_);
  std::vector<std::uint32_t> grants_seen(ports_);
  for (std::uint32_t iter = 0; iter < iterations_; ++iter) {
    std::fill(grant_of_input.begin(), grant_of_input.end(), -1);
    std::fill(grants_seen.begin(), grants_seen.end(), 0u);
    bool any_grant = false;
    for (std::uint32_t out = 0; out < ports_; ++out) {
      if (matching.output_matched(out)) continue;
      std::int32_t pick = -1;
      std::uint32_t seen = 0;
      for (std::uint32_t in = 0; in < ports_; ++in) {
        if (matching.input_matched(in)) continue;
        if (request_[static_cast<std::size_t>(in) * ports_ + out] == -1)
          continue;
        ++seen;
        if (rng_.uniform(seen) == 0) pick = static_cast<std::int32_t>(in);
      }
      if (pick == -1) continue;
      any_grant = true;
      const auto in = static_cast<std::uint32_t>(pick);
      ++grants_seen[in];
      if (rng_.uniform(grants_seen[in]) == 0)
        grant_of_input[in] = static_cast<std::int32_t>(out);
    }
    if (!any_grant) break;
    for (std::uint32_t in = 0; in < ports_; ++in) {
      if (grant_of_input[in] == -1) continue;
      const auto out = static_cast<std::uint32_t>(grant_of_input[in]);
      const std::int32_t cell =
          request_[static_cast<std::size_t>(in) * ports_ + out];
      matching.match(in, out, cell);
    }
  }
}

void PimArbiter::snap(snapshot::Walker& w) {
  rng_.snap(w);
  requests_.snap(w);
}

void PimScanArbiter::snap(snapshot::Walker& w) { rng_.snap(w); }

}  // namespace mmr
