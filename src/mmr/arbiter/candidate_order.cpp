#include "mmr/arbiter/candidate_order.hpp"

#include "mmr/snapshot/walker.hpp"

#include <limits>

#include "mmr/perf/probe.hpp"
#include "mmr/trace/event.hpp"
#include "mmr/trace/tracer.hpp"

namespace mmr {

CandidateOrderArbiter::CandidateOrderArbiter(std::uint32_t ports, Rng rng,
                                             bool use_priority)
    : ports_(ports), rng_(rng), use_priority_(use_priority) {
  MMR_ASSERT(ports_ > 0);
}

void CandidateOrderArbiter::arbitrate_into(const CandidateSet& candidates,
                                           Matching& matching) {
  MMR_ASSERT(candidates.ports() == ports_);
  matching.reset(ports_);
  const auto& all = candidates.all();
  if (all.empty()) return;

  const std::uint32_t levels = candidates.levels();

  // Conflict vector: pending request count per (level, output), plus the
  // per-output / per-input candidate buckets every later step walks instead
  // of the full candidate list.  The buckets are CSR flat arrays filled by
  // counting sort — ascending candidate order within each bucket, zero
  // per-bucket allocations.
  const std::size_t conflict_slots =
      static_cast<std::size_t>(levels) * ports_;
  if (conflict_slots > conflict_.capacity() ||
      all.size() > out_items_.capacity())
    MMR_PERF_COUNT(perf::Counter::kScratchRealloc, 1);
  conflict_.assign(conflict_slots, 0);
  output_free_.assign(ports_, 1);
  request_live_.assign(all.size(), 1);
  out_begin_.assign(static_cast<std::size_t>(ports_) + 1, 0);
  in_begin_.assign(static_cast<std::size_t>(ports_) + 1, 0);
  for (const Candidate& c : all) {
    ++conflict_[static_cast<std::size_t>(c.level) * ports_ + c.output];
    ++out_begin_[static_cast<std::size_t>(c.output) + 1];
    ++in_begin_[static_cast<std::size_t>(c.input) + 1];
  }
  for (std::uint32_t port = 0; port < ports_; ++port) {
    out_begin_[port + 1] += out_begin_[port];
    in_begin_[port + 1] += in_begin_[port];
  }
  out_items_.resize(all.size());
  in_items_.resize(all.size());
  out_fill_.assign(out_begin_.begin(), out_begin_.end() - 1);
  in_fill_.assign(in_begin_.begin(), in_begin_.end() - 1);
  for (std::size_t idx = 0; idx < all.size(); ++idx) {
    const Candidate& c = all[idx];
    out_items_[out_fill_[c.output]++] = static_cast<std::uint32_t>(idx);
    in_items_[in_fill_[c.input]++] = static_cast<std::uint32_t>(idx);
  }

  std::size_t live = all.size();
  while (live > 0) {
    // --- port ordering: pick the next output — lowest level with pending
    // requests first, then fewest conflicts at that level, ties random.
    std::uint32_t best_output = ports_;
    std::uint32_t best_level = levels;
    std::uint32_t best_conflict = std::numeric_limits<std::uint32_t>::max();
    std::uint32_t tie_count = 0;
    for (std::uint32_t out = 0; out < ports_; ++out) {
      if (!output_free_[out]) continue;
      // Lowest level at which this output has a pending request.
      std::uint32_t lvl = levels;
      for (std::uint32_t l = 0; l < levels; ++l) {
        if (conflict_[static_cast<std::size_t>(l) * ports_ + out] > 0) {
          lvl = l;
          break;
        }
      }
      if (lvl == levels) continue;  // no pending request for this output
      const std::uint32_t cnt =
          conflict_[static_cast<std::size_t>(lvl) * ports_ + out];
      if (lvl < best_level || (lvl == best_level && cnt < best_conflict)) {
        best_output = out;
        best_level = lvl;
        best_conflict = cnt;
        tie_count = 1;
      } else if (lvl == best_level && cnt == best_conflict) {
        // Reservoir sampling over tied ports = uniform random tie-break.
        ++tie_count;
        if (rng_.uniform(tie_count) == 0) best_output = out;
      }
    }
    if (best_output == ports_) break;  // all pending requests are blocked

    // --- arbitration: highest-priority pending request for that output
    // (or, in the coa-np ablation, a uniformly random pending request).
    // Only this output's bucket is walked; ascending candidate order keeps
    // the reservoir draws identical to the reference full-list scan.
    std::int32_t winner = -1;
    Priority best_priority = 0;
    std::uint32_t prio_ties = 0;
    for (std::uint32_t k = out_begin_[best_output];
         k < out_begin_[best_output + 1]; ++k) {
      const std::uint32_t idx = out_items_[k];
      if (!request_live_[idx]) continue;
      const Candidate& c = all[idx];
      const Priority effective = use_priority_ ? c.priority : 0;
      if (winner == -1 || effective > best_priority) {
        winner = static_cast<std::int32_t>(idx);
        best_priority = effective;
        prio_ties = 1;
      } else if (effective == best_priority) {
        ++prio_ties;
        if (rng_.uniform(prio_ties) == 0)
          winner = static_cast<std::int32_t>(idx);
      }
    }
    MMR_ASSERT(winner != -1);
    const Candidate& granted = all[static_cast<std::size_t>(winner)];
    matching.match(granted.input, granted.output, winner);
    MMR_TRACE_EMIT_NOW(trace::grant_reason_event, granted.input,
                       granted.output, granted.vc, granted.level,
                       granted.priority, best_conflict);
    output_free_[granted.output] = 0;

    // Drop every request involving the matched input or output, updating
    // the conflict vector — only the two affected buckets are touched.
    for (std::uint32_t k = in_begin_[granted.input];
         k < in_begin_[granted.input + 1]; ++k) {
      const std::uint32_t idx = in_items_[k];
      if (!request_live_[idx]) continue;
      const Candidate& c = all[idx];
      request_live_[idx] = 0;
      --conflict_[static_cast<std::size_t>(c.level) * ports_ + c.output];
      --live;
    }
    for (std::uint32_t k = out_begin_[granted.output];
         k < out_begin_[granted.output + 1]; ++k) {
      const std::uint32_t idx = out_items_[k];
      if (!request_live_[idx]) continue;
      const Candidate& c = all[idx];
      request_live_[idx] = 0;
      --conflict_[static_cast<std::size_t>(c.level) * ports_ + c.output];
      --live;
    }
  }
}

CandidateOrderScanArbiter::CandidateOrderScanArbiter(std::uint32_t ports,
                                                     Rng rng,
                                                     bool use_priority)
    : ports_(ports), rng_(rng), use_priority_(use_priority) {
  MMR_ASSERT(ports_ > 0);
}

void CandidateOrderScanArbiter::arbitrate_into(const CandidateSet& candidates,
                                               Matching& matching) {
  MMR_ASSERT(candidates.ports() == ports_);
  matching.reset(ports_);
  const auto& all = candidates.all();
  if (all.empty()) return;

  const std::uint32_t levels = candidates.levels();

  // Conflict vector: pending request count per (level, output).
  conflict_.assign(static_cast<std::size_t>(levels) * ports_, 0);
  input_free_.assign(ports_, 1);
  output_free_.assign(ports_, 1);
  request_live_.assign(all.size(), 1);
  for (const Candidate& c : all) {
    ++conflict_[static_cast<std::size_t>(c.level) * ports_ + c.output];
  }

  std::size_t live = all.size();
  while (live > 0) {
    // --- port ordering: pick the next output — lowest level with pending
    // requests first, then fewest conflicts at that level, ties random.
    std::uint32_t best_output = ports_;
    std::uint32_t best_level = levels;
    std::uint32_t best_conflict = std::numeric_limits<std::uint32_t>::max();
    std::uint32_t tie_count = 0;
    for (std::uint32_t out = 0; out < ports_; ++out) {
      if (!output_free_[out]) continue;
      // Lowest level at which this output has a pending request.
      std::uint32_t lvl = levels;
      for (std::uint32_t l = 0; l < levels; ++l) {
        if (conflict_[static_cast<std::size_t>(l) * ports_ + out] > 0) {
          lvl = l;
          break;
        }
      }
      if (lvl == levels) continue;  // no pending request for this output
      const std::uint32_t cnt =
          conflict_[static_cast<std::size_t>(lvl) * ports_ + out];
      if (lvl < best_level || (lvl == best_level && cnt < best_conflict)) {
        best_output = out;
        best_level = lvl;
        best_conflict = cnt;
        tie_count = 1;
      } else if (lvl == best_level && cnt == best_conflict) {
        // Reservoir sampling over tied ports = uniform random tie-break.
        ++tie_count;
        if (rng_.uniform(tie_count) == 0) best_output = out;
      }
    }
    if (best_output == ports_) break;  // all pending requests are blocked

    // --- arbitration: highest-priority pending request for that output
    // (or, in the coa-np ablation, a uniformly random pending request).
    std::int32_t winner = -1;
    Priority best_priority = 0;
    std::uint32_t prio_ties = 0;
    for (std::size_t idx = 0; idx < all.size(); ++idx) {
      if (!request_live_[idx]) continue;
      const Candidate& c = all[idx];
      if (c.output != best_output) continue;
      const Priority effective = use_priority_ ? c.priority : 0;
      if (winner == -1 || effective > best_priority) {
        winner = static_cast<std::int32_t>(idx);
        best_priority = effective;
        prio_ties = 1;
      } else if (effective == best_priority) {
        ++prio_ties;
        if (rng_.uniform(prio_ties) == 0)
          winner = static_cast<std::int32_t>(idx);
      }
    }
    MMR_ASSERT(winner != -1);
    const Candidate& granted = all[static_cast<std::size_t>(winner)];
    matching.match(granted.input, granted.output, winner);
    MMR_TRACE_EMIT_NOW(trace::grant_reason_event, granted.input,
                       granted.output, granted.vc, granted.level,
                       granted.priority, best_conflict);
    input_free_[granted.input] = 0;
    output_free_[granted.output] = 0;

    // Drop every request involving the matched input or output and
    // recompute (incrementally) the conflict vector.
    for (std::size_t idx = 0; idx < all.size(); ++idx) {
      if (!request_live_[idx]) continue;
      const Candidate& c = all[idx];
      if (c.input == granted.input || c.output == granted.output) {
        request_live_[idx] = 0;
        --conflict_[static_cast<std::size_t>(c.level) * ports_ + c.output];
        --live;
      }
    }
  }
}

void CandidateOrderArbiter::snap(snapshot::Walker& w) { rng_.snap(w); }

void CandidateOrderScanArbiter::snap(snapshot::Walker& w) { rng_.snap(w); }

}  // namespace mmr
