#include "mmr/arbiter/rr.hpp"

#include "mmr/snapshot/walker.hpp"

#include <algorithm>
#include <bit>

#include "mmr/sim/assert.hpp"

namespace mmr {

RoundRobinArbiter::RoundRobinArbiter(std::uint32_t ports)
    : ports_(ports),
      words_(bit_words(ports)),
      grant_ptr_(ports, 0),
      accept_ptr_(ports, 0) {
  MMR_ASSERT(ports_ > 0);
  MMR_ASSERT(ports_ <= kMaxPorts);
}

void RoundRobinArbiter::arbitrate_into(const CandidateSet& candidates,
                                       Matching& matching) {
  MMR_ASSERT(candidates.ports() == ports_);
  matching.reset(ports_);
  requests_.build(candidates);
  grant_of_input_.assign(ports_, -1);

  // Grant: every requesting output picks the first requesting input at or
  // after its pointer and steps past it whether or not the grant wins —
  // the non-desynchronising update that distinguishes rr from islip1.
  const std::uint64_t* live = requests_.live_outputs();
  for (std::uint32_t w = 0; w < words_; ++w) {
    std::uint64_t outs = live[w];
    const std::uint32_t base = w * kBitsPerWord;
    while (outs != 0) {
      const std::uint32_t out =
          base + static_cast<std::uint32_t>(std::countr_zero(outs));
      outs &= outs - 1;
      const std::int32_t pos = bits_first_cyclic(requests_.inputs_of(out),
                                                 words_, grant_ptr_[out]);
      MMR_ASSERT(pos != -1);  // a live output has at least one requester
      const auto in = static_cast<std::uint32_t>(pos);
      grant_ptr_[out] = (in + 1) % ports_;
      // Several outputs may grant one input; it accepts the grant its
      // accept pointer ranks first (ranks are distinct, so this is
      // order-independent).
      if (grant_of_input_[in] == -1) {
        grant_of_input_[in] = static_cast<std::int32_t>(out);
      } else {
        const auto cur = static_cast<std::uint32_t>(grant_of_input_[in]);
        const std::uint32_t a = accept_ptr_[in];
        if ((out + ports_ - a) % ports_ < (cur + ports_ - a) % ports_)
          grant_of_input_[in] = static_cast<std::int32_t>(out);
      }
    }
  }

  // Accept: one round only — losing outputs stay idle this cycle.
  for (std::uint32_t in = 0; in < ports_; ++in) {
    if (grant_of_input_[in] == -1) continue;
    const auto out = static_cast<std::uint32_t>(grant_of_input_[in]);
    const std::int32_t cell = requests_.cell(in, out);
    MMR_ASSERT(cell != -1);
    matching.match(in, out, cell);
    accept_ptr_[in] = (out + 1) % ports_;
  }
}

void RoundRobinArbiter::snap(snapshot::Walker& w) {
  snapshot::walk_vector_pod(w, grant_ptr_);
  snapshot::walk_vector_pod(w, accept_ptr_);
  requests_.snap(w);
}

RoundRobinScanArbiter::RoundRobinScanArbiter(std::uint32_t ports)
    : ports_(ports), grant_ptr_(ports, 0), accept_ptr_(ports, 0) {
  MMR_ASSERT(ports_ > 0);
}

void RoundRobinScanArbiter::arbitrate_into(const CandidateSet& candidates,
                                           Matching& matching) {
  MMR_ASSERT(candidates.ports() == ports_);
  matching.reset(ports_);

  request_.assign(static_cast<std::size_t>(ports_) * ports_, -1);
  const auto& all = candidates.all();
  for (std::size_t idx = 0; idx < all.size(); ++idx) {
    const Candidate& c = all[idx];
    std::int32_t& cell =
        request_[static_cast<std::size_t>(c.input) * ports_ + c.output];
    if (cell == -1 || c.level < all[static_cast<std::size_t>(cell)].level)
      cell = static_cast<std::int32_t>(idx);
  }

  std::vector<std::int32_t> grant_of_input(ports_, -1);
  for (std::uint32_t out = 0; out < ports_; ++out) {
    for (std::uint32_t k = 0; k < ports_; ++k) {
      const std::uint32_t in = (grant_ptr_[out] + k) % ports_;
      if (request_[static_cast<std::size_t>(in) * ports_ + out] == -1)
        continue;
      grant_ptr_[out] = (in + 1) % ports_;
      if (grant_of_input[in] == -1) {
        grant_of_input[in] = static_cast<std::int32_t>(out);
      } else {
        const auto cur = static_cast<std::uint32_t>(grant_of_input[in]);
        const std::uint32_t a = accept_ptr_[in];
        if ((out + ports_ - a) % ports_ < (cur + ports_ - a) % ports_)
          grant_of_input[in] = static_cast<std::int32_t>(out);
      }
      break;  // one grant per output
    }
  }

  for (std::uint32_t in = 0; in < ports_; ++in) {
    if (grant_of_input[in] == -1) continue;
    const auto out = static_cast<std::uint32_t>(grant_of_input[in]);
    const std::int32_t cell =
        request_[static_cast<std::size_t>(in) * ports_ + out];
    MMR_ASSERT(cell != -1);
    matching.match(in, out, cell);
    accept_ptr_[in] = (out + 1) % ports_;
  }
}

void RoundRobinScanArbiter::snap(snapshot::Walker& w) {
  snapshot::walk_vector_pod(w, grant_ptr_);
  snapshot::walk_vector_pod(w, accept_ptr_);
}

}  // namespace mmr
