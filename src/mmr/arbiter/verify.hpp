// Matching validity and maximality checks, shared by tests and (optionally)
// debug builds of the router.
#pragma once

#include <string>

#include "mmr/arbiter/candidate.hpp"
#include "mmr/arbiter/matching.hpp"

namespace mmr {

struct MatchingCheck {
  bool valid = true;
  std::string problem;  ///< first violation found, empty when valid
};

/// A matching is valid iff every matched (input, output, candidate) triple
/// names an actual candidate with those ports, no input or output appears
/// twice (Matching enforces this structurally), and size bookkeeping agrees.
[[nodiscard]] MatchingCheck check_matching(const CandidateSet& candidates,
                                           const Matching& matching);

/// True when no request (i -> j) exists with both i and j unmatched, i.e.
/// the matching is maximal in the request graph.
[[nodiscard]] bool is_maximal(const CandidateSet& candidates,
                              const Matching& matching);

}  // namespace mmr
