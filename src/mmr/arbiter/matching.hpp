// Conflict-free input/output matching: the result of one switch arbitration.
#pragma once

#include <cstdint>
#include <vector>

namespace mmr {

namespace snapshot {
class Walker;
}

class CandidateSet;

class Matching {
 public:
  explicit Matching(std::uint32_t ports);

  /// Clears the matching and resizes it to `ports`.  Reuses the existing
  /// buffers: no allocation happens unless `ports` grew, so arbiters can
  /// recycle one Matching across cycles allocation-free.
  void reset(std::uint32_t ports);

  /// Records that `input` was matched to `output`, transmitting the
  /// candidate at `candidate_index` within the arbitrated CandidateSet.
  void match(std::uint32_t input, std::uint32_t output,
             std::int32_t candidate_index);

  [[nodiscard]] std::uint32_t ports() const {
    return static_cast<std::uint32_t>(output_of_input_.size());
  }
  [[nodiscard]] std::uint32_t size() const { return size_; }
  [[nodiscard]] bool input_matched(std::uint32_t input) const;
  [[nodiscard]] bool output_matched(std::uint32_t output) const;
  /// -1 when unmatched.
  [[nodiscard]] std::int32_t output_of(std::uint32_t input) const;
  [[nodiscard]] std::int32_t input_of(std::uint32_t output) const;
  [[nodiscard]] std::int32_t candidate_of(std::uint32_t input) const;

 private:
  std::vector<std::int32_t> output_of_input_;
  std::vector<std::int32_t> input_of_output_;
  std::vector<std::int32_t> candidate_of_input_;
  std::uint32_t size_ = 0;
};

/// Interface every switch scheduling algorithm implements.  Arbiters may be
/// stateful (rotating pointers); state must only depend on prior calls so
/// runs stay deterministic.
class SwitchArbiter {
 public:
  virtual ~SwitchArbiter() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Computes a conflict-free matching for one scheduling cycle into `out`
  /// (reset by the callee).  This is the hot-path entry point: callers that
  /// recycle `out` across cycles arbitrate allocation-free.
  virtual void arbitrate_into(const CandidateSet& candidates,
                              Matching& out) = 0;

  /// Convenience wrapper building a fresh Matching (tests, audit tooling).
  [[nodiscard]] Matching arbitrate(const CandidateSet& candidates);

  /// Checkpoint walk of the arbiter's internal state (rotation pointers,
  /// RNG lanes, cached request matrices).  The default no-op is correct
  /// only for genuinely stateless arbiters (maximal matching recomputed
  /// from scratch each cycle); every stateful arbiter must override.
  virtual void snap(snapshot::Walker& w) { (void)w; }
};

}  // namespace mmr
