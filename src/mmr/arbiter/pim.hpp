// Parallel Iterative Matching (Anderson et al., 1993): outputs grant a
// uniformly random requesting input, inputs accept a uniformly random grant,
// repeated for a fixed number of iterations.  QoS-blind baseline.
//
// The default engine walks word-parallel bitset request rows
// (BitRequestMatrix); reservoir draws are consumed in the exact ascending
// (output, input) order of the original cell-by-cell scan, so the RNG stream
// — and therefore every matching — is bit-identical to PimScanArbiter, the
// dense-array twin kept registered ("pim-scan") for differential audits.
#pragma once

#include "mmr/arbiter/bitreq.hpp"
#include "mmr/arbiter/candidate.hpp"
#include "mmr/arbiter/matching.hpp"
#include "mmr/sim/rng.hpp"

namespace mmr {

class PimArbiter final : public SwitchArbiter {
 public:
  /// `iterations == 0` selects log2(P)+1 (PIM converges in O(log P) expected).
  PimArbiter(std::uint32_t ports, Rng rng, std::uint32_t iterations = 0);

  /// "pim" at the default iteration count, "pim1" single-iteration.
  [[nodiscard]] const char* name() const override {
    return iterations_ == 1 ? "pim1" : "pim";
  }

  void arbitrate_into(const CandidateSet& candidates,
                      Matching& matching) override;

  void snap(snapshot::Walker& w) override;

  [[nodiscard]] std::uint32_t iterations() const { return iterations_; }

 private:
  std::uint32_t ports_;
  std::uint32_t words_;
  Rng rng_;
  std::uint32_t iterations_;
  BitRequestMatrix requests_;
  std::vector<std::uint64_t> free_in_;
  std::vector<std::uint64_t> free_out_;
  std::vector<std::uint64_t> granted_;  ///< inputs granted this iteration
  std::vector<std::uint64_t> scratch_;
  std::vector<std::int32_t> grant_of_input_;
  std::vector<std::uint32_t> grants_seen_;
};

/// The original dense-array PIM engine, kept registered ("pim-scan") as the
/// differential-audit twin of the bitset "pim".
class PimScanArbiter final : public SwitchArbiter {
 public:
  PimScanArbiter(std::uint32_t ports, Rng rng, std::uint32_t iterations = 0);

  [[nodiscard]] const char* name() const override { return "pim-scan"; }

  void arbitrate_into(const CandidateSet& candidates,
                      Matching& matching) override;

  void snap(snapshot::Walker& w) override;

  [[nodiscard]] std::uint32_t iterations() const { return iterations_; }

 private:
  std::uint32_t ports_;
  Rng rng_;
  std::uint32_t iterations_;
  std::vector<std::int32_t> request_;
};

}  // namespace mmr
