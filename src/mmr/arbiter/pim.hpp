// Parallel Iterative Matching (Anderson et al., 1993): outputs grant a
// uniformly random requesting input, inputs accept a uniformly random grant,
// repeated for a fixed number of iterations.  QoS-blind baseline.
#pragma once

#include "mmr/arbiter/candidate.hpp"
#include "mmr/arbiter/matching.hpp"
#include "mmr/sim/rng.hpp"

namespace mmr {

class PimArbiter final : public SwitchArbiter {
 public:
  /// `iterations == 0` selects log2(P)+1 (PIM converges in O(log P) expected).
  PimArbiter(std::uint32_t ports, Rng rng, std::uint32_t iterations = 0);

  /// "pim" at the default iteration count, "pim1" single-iteration.
  [[nodiscard]] const char* name() const override {
    return iterations_ == 1 ? "pim1" : "pim";
  }

  void arbitrate_into(const CandidateSet& candidates,
                      Matching& matching) override;

  [[nodiscard]] std::uint32_t iterations() const { return iterations_; }

 private:
  std::uint32_t ports_;
  Rng rng_;
  std::uint32_t iterations_;
  std::vector<std::int32_t> request_;
};

}  // namespace mmr
