#include "mmr/arbiter/factory.hpp"

#include <stdexcept>

#include "mmr/arbiter/candidate_order.hpp"
#include "mmr/arbiter/greedy_priority.hpp"
#include "mmr/arbiter/islip.hpp"
#include "mmr/arbiter/maxmatch.hpp"
#include "mmr/arbiter/pim.hpp"
#include "mmr/arbiter/wavefront.hpp"

namespace mmr {

std::unique_ptr<SwitchArbiter> make_arbiter(const std::string& name,
                                            std::uint32_t ports, Rng rng) {
  if (name == "coa")
    return std::make_unique<CandidateOrderArbiter>(ports, rng);
  if (name == "coa-np")
    return std::make_unique<CandidateOrderArbiter>(ports, rng,
                                                   /*use_priority=*/false);
  if (name == "wfa") return std::make_unique<WaveFrontArbiter>(ports);
  if (name == "wwfa") return std::make_unique<WrappedWaveFrontArbiter>(ports);
  if (name == "islip") return std::make_unique<IslipArbiter>(ports);
  if (name == "islip1") return std::make_unique<IslipArbiter>(ports, 1);
  if (name == "pim") return std::make_unique<PimArbiter>(ports, rng);
  if (name == "pim1") return std::make_unique<PimArbiter>(ports, rng, 1);
  if (name == "greedy")
    return std::make_unique<GreedyPriorityArbiter>(ports, rng);
  if (name == "maxmatch") return std::make_unique<MaxMatchArbiter>(ports);

  std::string valid;
  for (const std::string& n : arbiter_names()) {
    if (!valid.empty()) valid += ", ";
    valid += n;
  }
  throw std::invalid_argument("unknown arbiter '" + name +
                              "'; valid arbiters: " + valid);
}

const std::vector<std::string>& arbiter_names() {
  static const std::vector<std::string> names = {
      "coa", "coa-np", "wfa", "wwfa", "islip",
      "islip1", "pim", "pim1", "greedy", "maxmatch"};
  return names;
}

}  // namespace mmr
