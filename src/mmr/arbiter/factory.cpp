#include "mmr/arbiter/factory.hpp"

#include <bit>
#include <map>
#include <stdexcept>

#include "mmr/arbiter/candidate_order.hpp"
#include "mmr/arbiter/greedy_priority.hpp"
#include "mmr/arbiter/islip.hpp"
#include "mmr/arbiter/maxmatch.hpp"
#include "mmr/arbiter/pim.hpp"
#include "mmr/arbiter/rr.hpp"
#include "mmr/arbiter/wavefront.hpp"

namespace mmr {

std::unique_ptr<SwitchArbiter> make_arbiter(const std::string& name,
                                            std::uint32_t ports, Rng rng) {
  if (name == "coa")
    return std::make_unique<CandidateOrderArbiter>(ports, rng);
  if (name == "coa-np")
    return std::make_unique<CandidateOrderArbiter>(ports, rng,
                                                   /*use_priority=*/false);
  if (name == "coa-scan")
    return std::make_unique<CandidateOrderScanArbiter>(ports, rng);
  if (name == "wfa") return std::make_unique<WaveFrontArbiter>(ports);
  if (name == "wfa-scan")
    return std::make_unique<WaveFrontScanArbiter>(ports, /*rotate=*/true);
  if (name == "wfa-fixed")
    return std::make_unique<WaveFrontScanArbiter>(ports, /*rotate=*/false);
  if (name == "wwfa") return std::make_unique<WrappedWaveFrontArbiter>(ports);
  if (name == "islip") return std::make_unique<IslipArbiter>(ports);
  if (name == "islip1") return std::make_unique<IslipArbiter>(ports, 1);
  if (name == "islip-scan")
    return std::make_unique<IslipScanArbiter>(ports);
  if (name == "pim") return std::make_unique<PimArbiter>(ports, rng);
  if (name == "pim1") return std::make_unique<PimArbiter>(ports, rng, 1);
  if (name == "pim-scan") return std::make_unique<PimScanArbiter>(ports, rng);
  if (name == "greedy")
    return std::make_unique<GreedyPriorityArbiter>(ports, rng);
  if (name == "maxmatch") return std::make_unique<MaxMatchArbiter>(ports);
  if (name == "rr") return std::make_unique<RoundRobinArbiter>(ports);
  if (name == "rr-scan") return std::make_unique<RoundRobinScanArbiter>(ports);

  std::string valid;
  for (const std::string& n : arbiter_names()) {
    if (!valid.empty()) valid += ", ";
    valid += n;
  }
  throw std::invalid_argument("unknown arbiter '" + name +
                              "'; valid arbiters: " + valid);
}

const std::vector<std::string>& arbiter_names() {
  static const std::vector<std::string> names = {
      "coa",  "coa-np", "coa-scan",   "wfa", "wfa-scan", "wfa-fixed",
      "wwfa", "islip",  "islip1",     "islip-scan",      "pim",
      "pim1", "pim-scan", "greedy",   "maxmatch", "rr",  "rr-scan"};
  return names;
}

const std::vector<std::pair<std::string, std::string>>& arbiter_twin_pairs() {
  static const std::vector<std::pair<std::string, std::string>> pairs = {
      {"coa", "coa-scan"},
      {"wfa", "wfa-scan"},
      {"islip", "islip-scan"},
      {"pim", "pim-scan"},
      {"rr", "rr-scan"},
  };
  return pairs;
}

const ArbiterTraits& arbiter_traits(const std::string& name) {
  // COA loops until every remaining request is blocked and greedy scans all
  // candidates, so both are maximal; both grant within an output strictly by
  // priority.  The wavefront sweeps visit every crosspoint while row/column
  // freedom only decreases, so they are maximal too.  iSLIP/PIM terminate
  // either converged (maximal) or after their iteration budget, gaining at
  // least one match per iteration.  Rotation fairness: iSLIP's
  // grant/accept-pointer desynchronisation, WWFA's rotating diagonal, and
  // WFA's rotating corner row (under a full request matrix the corner row
  // walks every input, so the diagonal matchings cover each pair once per P
  // cycles).  "wfa-fixed" keeps the legacy fixed corner and is intentionally
  // corner-biased — that starvation is the bug the rotation fixes, and the
  // corner bias the paper measures.
  static const std::map<std::string, ArbiterTraits> traits = {
      {"coa", {.maximal = true, .priority_ordered = true}},
      {"coa-np", {.maximal = true}},
      {"coa-scan", {.maximal = true, .priority_ordered = true}},
      {"wfa", {.maximal = true, .rotation_fair = true}},
      {"wfa-scan", {.maximal = true, .rotation_fair = true}},
      {"wfa-fixed", {.maximal = true}},
      {"wwfa", {.maximal = true, .rotation_fair = true}},
      {"islip", {.iteration_bounded = true, .rotation_fair = true}},
      {"islip1", {.iteration_bounded = true}},
      {"islip-scan", {.iteration_bounded = true, .rotation_fair = true}},
      {"pim", {.iteration_bounded = true}},
      {"pim1", {.iteration_bounded = true}},
      {"pim-scan", {.iteration_bounded = true}},
      {"greedy", {.maximal = true, .priority_ordered = true}},
      {"maxmatch", {.maximal = true, .exact_maximum = true}},
      // Single grant/accept round, pointers advance unconditionally: not
      // maximal, and deliberately not rotation-fair (the synchronized-
      // pointer pathology is the behavior qd=cicq studies).
      {"rr", {.iteration_bounded = true}},
      {"rr-scan", {.iteration_bounded = true}},
  };
  const auto it = traits.find(name);
  if (it == traits.end()) {
    throw std::invalid_argument("no traits for unknown arbiter '" + name +
                                "'");
  }
  return it->second;
}

std::uint32_t arbiter_iterations(const std::string& name,
                                 std::uint32_t ports) {
  // Mirrors the iteration defaults the constructors above apply.
  if (name == "islip1" || name == "pim1" || name == "rr" ||
      name == "rr-scan")
    return 1;
  if (name == "islip" || name == "pim" || name == "islip-scan" ||
      name == "pim-scan")
    return std::bit_width(ports) + 1u;
  return 0;
}

}  // namespace mmr
