// iSLIP (McKeown) — iterative round-robin matching with rotating grant and
// accept pointers; a classic input-queued switch scheduler included as a
// baseline.  Priorities are ignored (like WFA); the candidate set is treated
// as a VOQ request matrix.
#pragma once

#include "mmr/arbiter/candidate.hpp"
#include "mmr/arbiter/matching.hpp"

namespace mmr {

class IslipArbiter final : public SwitchArbiter {
 public:
  /// `iterations == 0` selects the conventional log2(P)+1 iterations.
  IslipArbiter(std::uint32_t ports, std::uint32_t iterations = 0);

  /// "islip" at the default iteration count, "islip1" single-iteration.
  [[nodiscard]] const char* name() const override {
    return iterations_ == 1 ? "islip1" : "islip";
  }

  void arbitrate_into(const CandidateSet& candidates,
                      Matching& matching) override;

  [[nodiscard]] std::uint32_t iterations() const { return iterations_; }

  /// Rotating pointers (exposed for tests and the audit harness; standard
  /// iSLIP only moves them on first-iteration accepts).
  [[nodiscard]] std::uint32_t grant_pointer(std::uint32_t output) const {
    return grant_ptr_[output];
  }
  [[nodiscard]] std::uint32_t accept_pointer(std::uint32_t input) const {
    return accept_ptr_[input];
  }

 private:
  std::uint32_t ports_;
  std::uint32_t iterations_;
  std::vector<std::uint32_t> grant_ptr_;   ///< per output
  std::vector<std::uint32_t> accept_ptr_;  ///< per input
  std::vector<std::int32_t> request_;      ///< (input, output) -> candidate
};

}  // namespace mmr
