// iSLIP (McKeown) — iterative round-robin matching with rotating grant and
// accept pointers; a classic input-queued switch scheduler included as a
// baseline.  Priorities are ignored (like WFA); the candidate set is treated
// as a VOQ request matrix.
//
// The default engine grants from word-parallel bitset request rows
// (BitRequestMatrix): each output's grant stage is a cyclic first-set-bit
// search from its grant pointer over `inputs_of(out) & free_inputs`, one AND
// and a ctz per word instead of a cell-by-cell walk.  IslipScanArbiter keeps
// the original dense-array engine as the differential-audit twin proving the
// bitset engine bit-identical.
#pragma once

#include "mmr/arbiter/bitreq.hpp"
#include "mmr/arbiter/candidate.hpp"
#include "mmr/arbiter/matching.hpp"

namespace mmr {

class IslipArbiter final : public SwitchArbiter {
 public:
  /// `iterations == 0` selects the conventional log2(P)+1 iterations.
  IslipArbiter(std::uint32_t ports, std::uint32_t iterations = 0);

  /// "islip" at the default iteration count, "islip1" single-iteration.
  [[nodiscard]] const char* name() const override {
    return iterations_ == 1 ? "islip1" : "islip";
  }

  void arbitrate_into(const CandidateSet& candidates,
                      Matching& matching) override;

  void snap(snapshot::Walker& w) override;

  [[nodiscard]] std::uint32_t iterations() const { return iterations_; }

  /// Rotating pointers (exposed for tests and the audit harness; standard
  /// iSLIP only moves them on first-iteration accepts).
  [[nodiscard]] std::uint32_t grant_pointer(std::uint32_t output) const {
    return grant_ptr_[output];
  }
  [[nodiscard]] std::uint32_t accept_pointer(std::uint32_t input) const {
    return accept_ptr_[input];
  }

 private:
  std::uint32_t ports_;
  std::uint32_t words_;
  std::uint32_t iterations_;
  std::vector<std::uint32_t> grant_ptr_;   ///< per output
  std::vector<std::uint32_t> accept_ptr_;  ///< per input
  BitRequestMatrix requests_;
  std::vector<std::uint64_t> free_in_;   ///< unmatched inputs with requests
  std::vector<std::uint64_t> free_out_;  ///< unmatched outputs with requests
  std::vector<std::uint64_t> granted_;   ///< inputs granted this iteration
  std::vector<std::uint64_t> scratch_;   ///< per-output grant-row workspace
  std::vector<std::int32_t> grant_of_input_;
};

/// The original dense-array iSLIP engine, kept registered ("islip-scan") as
/// the differential-audit twin of the bitset "islip".
class IslipScanArbiter final : public SwitchArbiter {
 public:
  IslipScanArbiter(std::uint32_t ports, std::uint32_t iterations = 0);

  [[nodiscard]] const char* name() const override { return "islip-scan"; }

  void arbitrate_into(const CandidateSet& candidates,
                      Matching& matching) override;

  void snap(snapshot::Walker& w) override;

  [[nodiscard]] std::uint32_t iterations() const { return iterations_; }

 private:
  std::uint32_t ports_;
  std::uint32_t iterations_;
  std::vector<std::uint32_t> grant_ptr_;
  std::vector<std::uint32_t> accept_ptr_;
  std::vector<std::int32_t> request_;  ///< (input, output) -> candidate
};

}  // namespace mmr
