// The Candidate-Order Arbiter (COA) — the paper's proposal (Section 4).
//
// 1. Arrange all candidates into a selection matrix of L*P rows x P columns
//    (rows grouped by level, one row per input within a level); compute the
//    conflict vector: per (level, output), the number of pending requests.
// 2. Port ordering: select output ports first by level, then by increasing
//    conflict within that level (ports with many conflicts are matched last
//    since they have the most opportunities); ties broken randomly.
// 3. Arbitration: among the pending requests for the selected output, grant
//    the one with the highest connection priority.
// Each grant removes all requests of the matched input and output; the
// conflict vector is recomputed and the process repeats until no requests
// remain, yielding a conflict-free matching.
//
// Two implementations produce bit-identical matchings (same RNG draw
// sequence; tests/test_coa.cpp proves the equivalence):
//  * CandidateOrderArbiter ("coa") — per-output / per-input candidate
//    buckets built once per arbitration, so each grant touches only the
//    candidates of the selected output and each removal only the two
//    affected buckets.  Buckets live in a structure-of-arrays CSR layout
//    (two flat index arrays plus offset tables) built by counting sort, so
//    a whole arbitration performs no per-bucket allocations and walks
//    contiguous memory.
//  * CandidateOrderScanArbiter ("coa-scan") — the reference formulation:
//    every grant and removal scans the full candidate list.  Kept as the
//    perf baseline (bench/perf_baseline) and differential-audit reference.
#pragma once

#include "mmr/arbiter/candidate.hpp"
#include "mmr/arbiter/matching.hpp"
#include "mmr/sim/rng.hpp"

namespace mmr {

class CandidateOrderArbiter final : public SwitchArbiter {
 public:
  /// `use_priority == false` gives the "coa-np" ablation: the same
  /// level/conflict port ordering, but contention within an output is
  /// resolved randomly instead of by connection priority — isolating how
  /// much of COA's QoS advantage comes from each of its two decisions.
  CandidateOrderArbiter(std::uint32_t ports, Rng rng,
                        bool use_priority = true);

  [[nodiscard]] const char* name() const override {
    return use_priority_ ? "coa" : "coa-np";
  }

  void arbitrate_into(const CandidateSet& candidates,
                      Matching& matching) override;

  void snap(snapshot::Walker& w) override;

 private:
  std::uint32_t ports_;
  Rng rng_;
  bool use_priority_;

  // Scratch buffers reused across cycles to stay allocation-free in the
  // steady state.
  std::vector<std::uint32_t> conflict_;     ///< (level, output) -> pending
  std::vector<std::uint8_t> output_free_;
  std::vector<std::uint8_t> request_live_;  ///< per candidate
  /// Candidate indices per output / per input in CSR form: bucket of port p
  /// is items[begin[p] .. begin[p + 1]).  Counting sort fills each bucket in
  /// ascending candidate-index order (the scan order of the reference
  /// implementation, so RNG tie-break draws happen in the same sequence).
  std::vector<std::uint32_t> out_begin_;  ///< ports_ + 1 offsets
  std::vector<std::uint32_t> out_items_;
  std::vector<std::uint32_t> in_begin_;
  std::vector<std::uint32_t> in_items_;
  std::vector<std::uint32_t> out_fill_;  ///< counting-sort cursors
  std::vector<std::uint32_t> in_fill_;
};

/// Reference COA: identical algorithm and RNG stream, full-list scans per
/// grant and removal.  Registered as "coa-scan" so perf baselines and the
/// differential audit can compare the two implementations forever.
class CandidateOrderScanArbiter final : public SwitchArbiter {
 public:
  CandidateOrderScanArbiter(std::uint32_t ports, Rng rng,
                            bool use_priority = true);

  [[nodiscard]] const char* name() const override { return "coa-scan"; }

  void arbitrate_into(const CandidateSet& candidates,
                      Matching& matching) override;

  void snap(snapshot::Walker& w) override;

 private:
  std::uint32_t ports_;
  Rng rng_;
  bool use_priority_;

  std::vector<std::uint32_t> conflict_;
  std::vector<std::uint8_t> input_free_;
  std::vector<std::uint8_t> output_free_;
  std::vector<std::uint8_t> request_live_;
};

}  // namespace mmr
