#include "mmr/arbiter/hardware_model.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "mmr/sim/assert.hpp"

namespace mmr {

namespace hw {

namespace {

double log2ceil(std::uint32_t x) {
  return static_cast<double>(std::bit_width(x == 0 ? 1u : x - 1u));
}

}  // namespace

// Ripple blocks with carry-lookahead-ish delay: area linear in width,
// delay logarithmic (realistic for synthesized comparators/adders).
HardwareEstimate comparator(std::uint32_t bits) {
  return {4.0 * bits, 2.0 + log2ceil(bits)};
}

HardwareEstimate adder(std::uint32_t bits) {
  return {5.0 * bits, 2.0 + log2ceil(bits)};
}

HardwareEstimate max_tree(std::uint32_t leaves, std::uint32_t bits) {
  MMR_ASSERT(leaves >= 1);
  if (leaves == 1) return {0.0, 0.0};
  const double stages = log2ceil(leaves);
  const HardwareEstimate cmp = comparator(bits);
  // One comparator + a bits-wide 2:1 mux (3 GE/bit) per internal node.
  const double node_area = cmp.gate_equivalents + 3.0 * bits;
  return {(static_cast<double>(leaves) - 1.0) * node_area,
          stages * (cmp.critical_path_gates + 1.0)};
}

HardwareEstimate priority_encoder(std::uint32_t inputs) {
  // Programmable priority encoder (iSLIP's grant/accept arbiters).
  return {6.0 * inputs, 2.0 * log2ceil(inputs) + 2.0};
}

HardwareEstimate barrel_shifter(std::uint32_t bits) {
  const double stages = log2ceil(bits);
  return {3.0 * bits * stages, stages};
}

HardwareEstimate array_divider(std::uint32_t bits) {
  // Restoring array divider: bits^2 controlled-subtract cells, and the
  // borrow chain makes the delay quadratic-ish — this is what makes IABP
  // "hardly fit into our fast, compact router" (Section 3.1).
  const double cells = static_cast<double>(bits) * bits;
  return {6.0 * cells, 1.5 * static_cast<double>(bits) * bits / 4.0};
}

}  // namespace hw

HardwareEstimate estimate_arbiter(const std::string& name,
                                  std::uint32_t ports, std::uint32_t levels,
                                  std::uint32_t priority_bits) {
  MMR_ASSERT(ports >= 2);
  MMR_ASSERT(levels >= 1);
  const double p = ports;
  const double l = levels;
  const double iterations_log = std::floor(std::log2(p)) + 1.0;

  // wfa-scan/wfa-fixed are software-implementation variants of wfa (scan
  // loop vs bitset engine; rotating vs fixed corner is a control register,
  // not datapath); the synthesised crosspoint array is the same, except the
  // rotating corner adds a row-select barrel stage.
  if (name == "wfa" || name == "wfa-scan" || name == "wfa-fixed" ||
      name == "wwfa") {
    // One arbitration cell per crosspoint (~6 GE: request/grant logic);
    // the wave crosses 2P-1 (plain) or P (wrapped, plus the rotating
    // start mux) cell rows, 2 gate delays per cell.
    const double cells = p * p;
    const double rows = name == "wwfa" ? p : 2.0 * p - 1.0;
    const double mux = name == "wwfa" ? 3.0 * p * p : 0.0;  // wrap select
    const double rotate =                                   // corner select
        name == "wfa" || name == "wfa-scan" ? 3.0 * p * p : 0.0;
    return {6.0 * cells + mux + rotate, 2.0 * rows};
  }
  // coa-scan is a software-implementation variant of coa (reference scan
  // loop vs bucketed); the synthesised circuit is the same.
  if (name == "coa" || name == "coa-np" || name == "coa-scan") {
    // Selection matrix: L*P candidate registers feed (a) the conflict
    // vector — per (level, output) a P-input population count — and (b) a
    // per-output max-priority tree; port ordering is a min-tree over P
    // outputs keyed by (level, conflict).  Matching iterates: each grant
    // re-runs ordering + arbitration; worst case P sequential grants.
    const std::uint32_t cnt_bits =
        static_cast<std::uint32_t>(hw::log2ceil(ports + 1)) + 1;
    const HardwareEstimate conflict =
        HardwareEstimate{l * p * (hw::adder(cnt_bits).gate_equivalents * p /
                                  2.0),
                         hw::log2ceil(ports) *
                             hw::adder(cnt_bits).critical_path_gates};
    const HardwareEstimate ordering = hw::max_tree(
        ports, cnt_bits + static_cast<std::uint32_t>(hw::log2ceil(levels)) +
                   1);
    // coa-np replaces the per-output priority tree with a random pick
    // (LFSR + encoder) — the ablation's hardware saving.
    const HardwareEstimate arbitration =
        name != "coa-np" ? hw::max_tree(ports * levels, priority_bits)
                         : hw::priority_encoder(ports * levels) +
                               HardwareEstimate{10.0, 0.0};
    HardwareEstimate total = conflict;
    total.gate_equivalents += p * arbitration.gate_equivalents +
                              ordering.gate_equivalents;
    // Sequential grants: P iterations of (ordering + arbitration).
    total.critical_path_gates =
        conflict.critical_path_gates +
        p * (ordering.critical_path_gates + arbitration.critical_path_gates);
    return total;
  }
  if (name == "islip" || name == "islip1" || name == "islip-scan") {
    const double iterations = name == "islip1" ? 1.0 : iterations_log;
    const HardwareEstimate enc = hw::priority_encoder(ports);
    // P grant + P accept encoders, plus pointer registers (~8 GE each).
    return {2.0 * p * enc.gate_equivalents + 16.0 * p,
            iterations * 2.0 * enc.critical_path_gates};
  }
  if (name == "rr" || name == "rr-scan") {
    // One grant/accept round of the iSLIP datapath: the same P+P encoder
    // banks and pointer registers, one traversal of the decision path.
    const HardwareEstimate enc = hw::priority_encoder(ports);
    return {2.0 * p * enc.gate_equivalents + 16.0 * p,
            2.0 * enc.critical_path_gates};
  }
  if (name == "pim" || name == "pim1" || name == "pim-scan") {
    const double iterations = name == "pim1" ? 1.0 : iterations_log;
    const HardwareEstimate enc = hw::priority_encoder(ports);
    // Like iSLIP but with per-port LFSRs (~10 GE) instead of pointers.
    return {2.0 * p * enc.gate_equivalents + 10.0 * p,
            iterations * 2.0 * enc.critical_path_gates};
  }
  if (name == "greedy") {
    // Global sort of L*P candidates by priority: a bitonic network.
    const double n = l * p;
    const double stages = hw::log2ceil(static_cast<std::uint32_t>(n)) *
                          (hw::log2ceil(static_cast<std::uint32_t>(n)) + 1) /
                          2.0;
    const HardwareEstimate cmp = hw::comparator(priority_bits);
    return {n / 2.0 * stages * (cmp.gate_equivalents + 6.0 * priority_bits),
            stages * (cmp.critical_path_gates + 1.0) + 2.0 * p};
  }
  if (name == "maxmatch") {
    // Augmenting-path search is inherently sequential and unbounded at
    // router speed: flagged as an oracle.
    HardwareEstimate estimate{1e9, 1e9, false};
    return estimate;
  }
  throw std::invalid_argument("no hardware model for arbiter: " + name);
}

HardwareEstimate estimate_priority_logic(PriorityScheme scheme,
                                         std::uint32_t counter_bits,
                                         std::uint32_t priority_bits) {
  // The queue-age counter increments in a registered stage of its own, so
  // it contributes area but not decision-path delay.
  const HardwareEstimate counter{hw::adder(counter_bits).gate_equivalents,
                                 0.0};
  switch (scheme) {
    case PriorityScheme::kSiabp: {
      // First-new-bit detector (XOR against the remembered mask) and one
      // barrel shifter on the priority register: "just a shifter and some
      // combinatorial logic".
      const HardwareEstimate detect{3.0 * counter_bits, 2.0};
      const HardwareEstimate shift = hw::barrel_shifter(priority_bits);
      return counter + detect + shift;
    }
    case PriorityScheme::kIabp: {
      // The divider computing delay / IAT, plus floating-point style
      // normalisation — "hardware implementations of dividers are slow and
      // expensive, and hardly fit into our fast, compact router".
      const HardwareEstimate normalize{
          4.0 * priority_bits,
          2.0 * hw::log2ceil(priority_bits)};
      return counter + hw::array_divider(priority_bits) + normalize;
    }
    case PriorityScheme::kFifoAge:
      return counter;  // just the counter
    case PriorityScheme::kStatic:
      return {8.0, 0.0};  // a register
  }
  MMR_ASSERT_MSG(false, "unreachable priority scheme");
  return {};
}

}  // namespace mmr
