// First-order hardware complexity model for the schedulers (the paper's
// future work: "it is necessary to perform an analysis of its hardware
// complexity", plus Section 3.1's SIABP-vs-IABP comparison, which reported
// ~10x silicon area and ~38x delay reduction from VHDL synthesis).
//
// The model counts structural building blocks (comparators, adders,
// encoders, crosspoint cells) in 2-input-gate equivalents (GE) and
// estimates the critical path in gate delays.  It is a first-order
// *structural* model — good for ranking algorithms and scaling trends, not
// a synthesis replacement; see DESIGN.md.
#pragma once

#include <cstdint>
#include <string>

#include "mmr/sim/config.hpp"

namespace mmr {

struct HardwareEstimate {
  double gate_equivalents = 0.0;    ///< area, 2-input gate equivalents
  double critical_path_gates = 0.0;  ///< delay, gate delays per decision
  bool line_rate_feasible = true;    ///< false for oracle-only algorithms

  [[nodiscard]] HardwareEstimate operator+(const HardwareEstimate& o) const {
    return {gate_equivalents + o.gate_equivalents,
            critical_path_gates + o.critical_path_gates,
            line_rate_feasible && o.line_rate_feasible};
  }
};

/// Complexity of one switch arbitration for a registered arbiter name
/// ("coa", "wfa", "wwfa", "islip", "islip1", "pim", "pim1", "greedy",
/// "maxmatch").  `priority_bits` sizes the comparators of priority-aware
/// schemes.
[[nodiscard]] HardwareEstimate estimate_arbiter(const std::string& name,
                                                std::uint32_t ports,
                                                std::uint32_t levels,
                                                std::uint32_t priority_bits);

/// Complexity of one priority-bias evaluation (per virtual channel) for a
/// link-scheduler biasing function; `counter_bits` sizes the queue-age
/// counter, `priority_bits` the priority register.
[[nodiscard]] HardwareEstimate estimate_priority_logic(
    PriorityScheme scheme, std::uint32_t counter_bits,
    std::uint32_t priority_bits);

// Exposed building blocks (unit-tested individually).
namespace hw {
[[nodiscard]] HardwareEstimate comparator(std::uint32_t bits);
[[nodiscard]] HardwareEstimate adder(std::uint32_t bits);
[[nodiscard]] HardwareEstimate max_tree(std::uint32_t leaves,
                                        std::uint32_t bits);
[[nodiscard]] HardwareEstimate priority_encoder(std::uint32_t inputs);
[[nodiscard]] HardwareEstimate barrel_shifter(std::uint32_t bits);
[[nodiscard]] HardwareEstimate array_divider(std::uint32_t bits);
}  // namespace hw

}  // namespace mmr
