#include "mmr/arbiter/matching.hpp"

#include "mmr/arbiter/candidate.hpp"
#include "mmr/perf/probe.hpp"
#include "mmr/sim/assert.hpp"

namespace mmr {

Matching::Matching(std::uint32_t ports) { reset(ports); }

void Matching::reset(std::uint32_t ports) {
  MMR_ASSERT(ports > 0);
  if (ports > output_of_input_.capacity())
    MMR_PERF_COUNT(perf::Counter::kMatchingAlloc, 1);
  output_of_input_.assign(ports, -1);
  input_of_output_.assign(ports, -1);
  candidate_of_input_.assign(ports, -1);
  size_ = 0;
}

Matching SwitchArbiter::arbitrate(const CandidateSet& candidates) {
  Matching out(candidates.ports());
  arbitrate_into(candidates, out);
  return out;
}

void Matching::match(std::uint32_t input, std::uint32_t output,
                     std::int32_t candidate_index) {
  MMR_ASSERT(input < ports());
  MMR_ASSERT(output < ports());
  MMR_ASSERT_MSG(output_of_input_[input] == -1, "input matched twice");
  MMR_ASSERT_MSG(input_of_output_[output] == -1, "output matched twice");
  output_of_input_[input] = static_cast<std::int32_t>(output);
  input_of_output_[output] = static_cast<std::int32_t>(input);
  candidate_of_input_[input] = candidate_index;
  ++size_;
}

bool Matching::input_matched(std::uint32_t input) const {
  MMR_ASSERT(input < ports());
  return output_of_input_[input] != -1;
}

bool Matching::output_matched(std::uint32_t output) const {
  MMR_ASSERT(output < ports());
  return input_of_output_[output] != -1;
}

std::int32_t Matching::output_of(std::uint32_t input) const {
  MMR_ASSERT(input < ports());
  return output_of_input_[input];
}

std::int32_t Matching::input_of(std::uint32_t output) const {
  MMR_ASSERT(output < ports());
  return input_of_output_[output];
}

std::int32_t Matching::candidate_of(std::uint32_t input) const {
  MMR_ASSERT(input < ports());
  return candidate_of_input_[input];
}

}  // namespace mmr
