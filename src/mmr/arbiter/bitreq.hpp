// Word-parallel bitmap request matrices: the shared candidate-set view the
// bitset arbitration engines (WFA, iSLIP, PIM) grant from.  Each output owns
// a row of `uint64_t` words whose set bits are the inputs requesting it (and
// symmetrically per input), so candidate scans become popcount/ctz loops
// over a handful of words instead of walks over Candidate objects — the
// request matrix of the MWM/iSLIP linear-algebraic formulation, stored one
// machine word at a time.  Ports beyond 64 simply use more words per row;
// the representable maximum is kMaxPorts (mmr/sim/config.hpp).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "mmr/arbiter/candidate.hpp"
#include "mmr/sim/config.hpp"

namespace mmr {

namespace snapshot {
class Walker;
}

inline constexpr std::uint32_t kBitsPerWord = 64;

/// Words per bit-row for a given port count.
[[nodiscard]] constexpr std::uint32_t bit_words(std::uint32_t ports) {
  return (ports + (kBitsPerWord - 1)) / kBitsPerWord;
}

inline void bits_set(std::uint64_t* words, std::uint32_t bit) {
  words[bit >> 6] |= std::uint64_t{1} << (bit & 63u);
}

inline void bits_clear(std::uint64_t* words, std::uint32_t bit) {
  words[bit >> 6] &= ~(std::uint64_t{1} << (bit & 63u));
}

[[nodiscard]] inline bool bits_test(const std::uint64_t* words,
                                    std::uint32_t bit) {
  return (words[bit >> 6] >> (bit & 63u)) & 1u;
}

/// First set bit at or after `start`, wrapping around (the round-robin
/// pointer search of iSLIP's grant stage).  Returns -1 when no bit is set.
[[nodiscard]] std::int32_t bits_first_cyclic(const std::uint64_t* words,
                                             std::uint32_t word_count,
                                             std::uint32_t start);

/// The level-collapsed request matrix of one CandidateSet: per (input,
/// output) pair the lowest-level candidate (the VC the link scheduler ranked
/// highest — the one the hardware would transmit), as both bit-rows and a
/// dense candidate-index lookup.  Rebuilding reuses the previous cycle's
/// rows to clear only the cells that were actually occupied, so steady-state
/// cost tracks the number of requests, not ports^2.
class BitRequestMatrix {
 public:
  /// Rebuilds from `candidates`; allocation-free once sized for its ports.
  void build(const CandidateSet& candidates);

  [[nodiscard]] std::uint32_t ports() const { return ports_; }
  [[nodiscard]] std::uint32_t words() const { return words_; }

  /// Bit-row of inputs requesting `output` / outputs requested by `input`.
  [[nodiscard]] const std::uint64_t* inputs_of(std::uint32_t output) const {
    return out_rows_.data() + static_cast<std::size_t>(output) * words_;
  }
  [[nodiscard]] const std::uint64_t* outputs_of(std::uint32_t input) const {
    return in_rows_.data() + static_cast<std::size_t>(input) * words_;
  }

  /// Inputs / outputs with at least one request (word mask).
  [[nodiscard]] const std::uint64_t* live_inputs() const {
    return in_live_.data();
  }
  [[nodiscard]] const std::uint64_t* live_outputs() const {
    return out_live_.data();
  }

  /// Candidate index transmitted when (input, output) is granted; -1 when
  /// the pair holds no request.
  [[nodiscard]] std::int32_t cell(std::uint32_t input,
                                  std::uint32_t output) const {
    return cell_[static_cast<std::size_t>(input) * ports_ + output];
  }

  /// Checkpoint walk.  The whole matrix persists across cycles: build()
  /// sparse-clears using the *previous* rows' set bits, so resetting any of
  /// this to zero on restore would change the next build's work (and the
  /// state hash).  Serialize verbatim.
  void snap(snapshot::Walker& w);

 private:
  std::uint32_t ports_ = 0;
  std::uint32_t words_ = 0;
  std::vector<std::uint64_t> in_rows_;   ///< per input: requested outputs
  std::vector<std::uint64_t> out_rows_;  ///< per output: requesting inputs
  std::vector<std::uint64_t> in_live_;
  std::vector<std::uint64_t> out_live_;
  std::vector<std::int32_t> cell_;  ///< (input, output) -> candidate index
};

}  // namespace mmr
