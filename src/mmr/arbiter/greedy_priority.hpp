// Greedy highest-priority-first matching: sort all candidates by priority
// (ties random) and grant greedily.  This is the "take priorities seriously,
// ignore conflict structure" ablation of COA — COA additionally orders
// output ports by candidate level and conflict count.
#pragma once

#include "mmr/arbiter/candidate.hpp"
#include "mmr/arbiter/matching.hpp"
#include "mmr/sim/rng.hpp"

namespace mmr {

class GreedyPriorityArbiter final : public SwitchArbiter {
 public:
  GreedyPriorityArbiter(std::uint32_t ports, Rng rng);

  [[nodiscard]] const char* name() const override { return "greedy"; }

  void arbitrate_into(const CandidateSet& candidates,
                      Matching& matching) override;

  void snap(snapshot::Walker& w) override;

 private:
  std::uint32_t ports_;
  Rng rng_;
  std::vector<std::uint32_t> order_;
};

}  // namespace mmr
