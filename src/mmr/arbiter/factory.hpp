// Name-based arbiter construction so configs, benches and examples can select
// algorithms with a string.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mmr/arbiter/matching.hpp"
#include "mmr/sim/rng.hpp"

namespace mmr {

/// Known names: "coa", "wfa", "islip", "islip1" (single iteration), "pim",
/// "pim1", "greedy", "maxmatch".  Throws std::invalid_argument on unknown
/// names (listing the valid ones).
std::unique_ptr<SwitchArbiter> make_arbiter(const std::string& name,
                                            std::uint32_t ports, Rng rng);

/// All registered arbiter names (for sweeps and help text).
const std::vector<std::string>& arbiter_names();

}  // namespace mmr
