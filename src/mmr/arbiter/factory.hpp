// Name-based arbiter construction so configs, benches and examples can select
// algorithms with a string.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mmr/arbiter/matching.hpp"
#include "mmr/sim/rng.hpp"

namespace mmr {

/// Known names: "coa", "wfa", "islip", "islip1" (single iteration), "pim",
/// "pim1", "greedy", "maxmatch", plus legacy/reference engines "coa-scan",
/// "wfa-scan", "wfa-fixed" (the pre-rotation fixed-corner WFA), "islip-scan"
/// and "pim-scan".  Throws std::invalid_argument on unknown names (listing
/// the valid ones).
std::unique_ptr<SwitchArbiter> make_arbiter(const std::string& name,
                                            std::uint32_t ports, Rng rng);

/// All registered arbiter names (for sweeps and help text).
const std::vector<std::string>& arbiter_names();

/// (optimised, reference) name pairs that must produce bit-identical
/// matchings from identical inputs and RNG seeds: the word-parallel bitset /
/// SoA engines and the straightforward scan formulations they replaced.  The
/// differential audit (mmr/audit, bench/audit_soak --twins) replays both
/// sides of every pair and aborts on the first diverging grant.
const std::vector<std::pair<std::string, std::string>>& arbiter_twin_pairs();

/// The documented correctness envelope of a registered arbiter — what the
/// differential audit harness (mmr/audit) may assert about its matchings.
/// Claims here are guarantees of the algorithm, not empirical observations;
/// an audit violation therefore always means an implementation bug.
struct ArbiterTraits {
  /// Leaves no request with both endpoints unmatched (maximal matching).
  bool maximal = false;
  /// Matching size always equals the Hopcroft-Karp maximum.
  bool exact_maximum = false;
  /// A candidate is never granted an output while a strictly
  /// higher-priority candidate for the same output goes entirely unmatched
  /// (the priority-ordering property of COA and greedy arbitration).
  bool priority_ordered = false;
  /// Iterative schemes with a fixed iteration budget: every arbitration is
  /// either maximal (converged early) or holds at least
  /// arbiter_iterations(name, ports) matches (each iteration adds one).
  bool iteration_bounded = false;
  /// Pointer/diagonal rotation desynchronises under a persistent full
  /// request matrix: after warm-up, every window of P consecutive cycles
  /// serves each (input, output) pair exactly once at 100% throughput.
  bool rotation_fair = false;
};

/// Traits of a registered arbiter; throws on unknown names like
/// make_arbiter.
const ArbiterTraits& arbiter_traits(const std::string& name);

/// Iteration budget an arbiter of `name` runs at for a given port count
/// (the floor used with ArbiterTraits::iteration_bounded); 0 for
/// non-iterative arbiters.
std::uint32_t arbiter_iterations(const std::string& name, std::uint32_t ports);

}  // namespace mmr
