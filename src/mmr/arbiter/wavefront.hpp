// Wave Front Arbiters (Tamir & Chi, 1993) — the conventional, QoS-blind
// symmetric crossbar arbiters the paper compares against.
//
// An arbitration wave sweeps the P x P request array along anti-diagonals; a
// crosspoint grants iff it holds a request and neither its row (input) nor
// its column (output) has granted yet.  Cells of one anti-diagonal touch
// distinct rows and columns, so each wave is conflict-free by construction.
// Connection priorities are ignored — that is precisely the property the
// paper investigates.
//
// Corner placement is a fairness decision, not a detail.  With the corner
// fixed at row 0, a contested output is served in strict input-index order:
// under a sustained hotspot the highest-index requester waits until every
// lower-index one stops requesting, which bench/incast_survival showed can
// be the whole run (a paused high-index port starved for >100k cycles while
// COA bounded every pause at <= 250).  The default "wfa" therefore rotates
// the corner one row per arbitration — input (offset) is swept first, so
// every input's wait at a contested output is bounded by P arbitrations —
// and grants from word-parallel bitset request rows (BitRequestMatrix).
//
// Variants:
//  * WaveFrontArbiter ("wfa") — bitset engine, rotating corner row.
//  * WaveFrontScanArbiter("wfa-scan") — reference scan engine with the same
//    rotating-corner semantics; the differential-audit twin proving the
//    bitset engine bit-identical.
//  * WaveFrontScanArbiter("wfa-fixed") — the paper's fixed top-left corner,
//    exactly as "wfa" behaved before the rotation fix; kept registered so
//    the starvation bug stays measurable (and the paper's corner-bias
//    results stay reproducible).
//  * WrappedWaveFrontArbiter ("wwfa") — Tamir & Chi's wrapped variant: P
//    full diagonals, with the starting diagonal rotating every arbitration.
#pragma once

#include "mmr/arbiter/bitreq.hpp"
#include "mmr/arbiter/candidate.hpp"
#include "mmr/arbiter/matching.hpp"

namespace mmr {

namespace detail {

/// Collapses candidates to a (input, output) -> candidate-index request
/// array, keeping the lowest-level candidate per pair.
void collapse_requests(const CandidateSet& candidates, std::uint32_t ports,
                       std::vector<std::int32_t>& request);

}  // namespace detail

/// Default WFA: word-parallel bitset engine, corner rotating one row per
/// arbitration (the starvation fix).
class WaveFrontArbiter final : public SwitchArbiter {
 public:
  explicit WaveFrontArbiter(std::uint32_t ports);

  [[nodiscard]] const char* name() const override { return "wfa"; }

  void arbitrate_into(const CandidateSet& candidates,
                      Matching& matching) override;

  void snap(snapshot::Walker& w) override;

  /// The row the next arbitration's wave starts from (exposed for tests).
  [[nodiscard]] std::uint32_t next_corner_row() const { return offset_; }

 private:
  std::uint32_t ports_;
  std::uint32_t words_;
  std::uint32_t offset_ = 0;
  BitRequestMatrix requests_;
  std::vector<std::uint64_t> free_rows_;  ///< rotated-row indices still free
  std::vector<std::uint64_t> free_cols_;
};

/// Reference scan engine (dense request array, cell-by-cell sweep) with a
/// selectable corner policy.  rotate=true is the audit twin of the bitset
/// "wfa"; rotate=false is the legacy fixed-corner arbiter ("wfa-fixed").
class WaveFrontScanArbiter final : public SwitchArbiter {
 public:
  WaveFrontScanArbiter(std::uint32_t ports, bool rotate);

  [[nodiscard]] const char* name() const override {
    return rotate_ ? "wfa-scan" : "wfa-fixed";
  }

  void arbitrate_into(const CandidateSet& candidates,
                      Matching& matching) override;

  void snap(snapshot::Walker& w) override;

  [[nodiscard]] std::uint32_t next_corner_row() const { return offset_; }

 private:
  std::uint32_t ports_;
  bool rotate_;
  std::uint32_t offset_ = 0;
  std::vector<std::int32_t> request_;  ///< (input, output) -> candidate index
};

/// Wrapped WFA with rotating starting diagonal (positionally fair).
class WrappedWaveFrontArbiter final : public SwitchArbiter {
 public:
  explicit WrappedWaveFrontArbiter(std::uint32_t ports);

  [[nodiscard]] const char* name() const override { return "wwfa"; }

  void arbitrate_into(const CandidateSet& candidates,
                      Matching& matching) override;

  void snap(snapshot::Walker& w) override;

  /// The diagonal the next arbitration will start from (exposed for tests).
  [[nodiscard]] std::uint32_t next_start_diagonal() const { return start_; }

 private:
  std::uint32_t ports_;
  std::uint32_t start_ = 0;
  std::vector<std::int32_t> request_;
};

}  // namespace mmr
