// Wave Front Arbiters (Tamir & Chi, 1993) — the conventional, QoS-blind
// symmetric crossbar arbiters the paper compares against.
//
// An arbitration wave sweeps the P x P request array along anti-diagonals; a
// crosspoint grants iff it holds a request and neither its row (input) nor
// its column (output) has granted yet.  Cells of one anti-diagonal touch
// distinct rows and columns, so each wave is conflict-free by construction.
// Connection priorities are ignored — that is precisely the property the
// paper investigates.
//
// Two variants:
//  * WaveFrontArbiter ("wfa") — as the paper describes it: the wave always
//    starts at the top-left corner and moves to the bottom-right, so
//    crosspoints near the origin are structurally favoured.
//  * WrappedWaveFrontArbiter ("wwfa") — Tamir & Chi's wrapped variant: P
//    full diagonals, with the starting diagonal rotating every arbitration,
//    removing the positional bias.
#pragma once

#include "mmr/arbiter/candidate.hpp"
#include "mmr/arbiter/matching.hpp"

namespace mmr {

namespace detail {

/// Collapses candidates to a (input, output) -> candidate-index request
/// array, keeping the lowest-level candidate per pair.
void collapse_requests(const CandidateSet& candidates, std::uint32_t ports,
                       std::vector<std::int32_t>& request);

}  // namespace detail

/// Plain WFA: fixed top-left priority corner (the paper's description).
class WaveFrontArbiter final : public SwitchArbiter {
 public:
  explicit WaveFrontArbiter(std::uint32_t ports);

  [[nodiscard]] const char* name() const override { return "wfa"; }

  void arbitrate_into(const CandidateSet& candidates,
                      Matching& matching) override;

 private:
  std::uint32_t ports_;
  std::vector<std::int32_t> request_;  ///< (input, output) -> candidate index
};

/// Wrapped WFA with rotating starting diagonal (positionally fair).
class WrappedWaveFrontArbiter final : public SwitchArbiter {
 public:
  explicit WrappedWaveFrontArbiter(std::uint32_t ports);

  [[nodiscard]] const char* name() const override { return "wwfa"; }

  void arbitrate_into(const CandidateSet& candidates,
                      Matching& matching) override;

  /// The diagonal the next arbitration will start from (exposed for tests).
  [[nodiscard]] std::uint32_t next_start_diagonal() const { return start_; }

 private:
  std::uint32_t ports_;
  std::uint32_t start_ = 0;
  std::vector<std::int32_t> request_;
};

}  // namespace mmr
