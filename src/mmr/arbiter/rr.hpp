// Single-iteration round-robin/round-robin arbitration ("rr"): every output
// grants the first requesting input at or after its rotating pointer, every
// input accepts the grant closest after its own pointer, and both pointers
// step past the position they just considered — unconditionally, accepted or
// not.  This is the RR/RR scheduler of Gunther's CICQ analysis (PAPERS.md)
// expressed as a crossbar matching arbiter: without iSLIP's accepted-only
// pointer update the pointers never desynchronise, which is exactly the
// throughput pathology the CICQ crosspoint buffers (qd=cicq) paper over.
// Registered in the factory so the differential audit harness and the
// simulation oracle cover it like every other arbiter.
#pragma once

#include <vector>

#include "mmr/arbiter/bitreq.hpp"
#include "mmr/arbiter/matching.hpp"

namespace mmr {

/// Word-parallel engine (BitRequestMatrix rows, cyclic first-set-bit scans).
class RoundRobinArbiter final : public SwitchArbiter {
 public:
  explicit RoundRobinArbiter(std::uint32_t ports);

  [[nodiscard]] const char* name() const override { return "rr"; }
  void arbitrate_into(const CandidateSet& candidates,
                      Matching& matching) override;
  void snap(snapshot::Walker& w) override;

 private:
  std::uint32_t ports_;
  std::uint32_t words_;
  std::vector<std::uint32_t> grant_ptr_;   ///< per output: next input
  std::vector<std::uint32_t> accept_ptr_;  ///< per input: next output
  BitRequestMatrix requests_;
  std::vector<std::int32_t> grant_of_input_;  ///< scratch
};

/// Naive O(P^2) twin of RoundRobinArbiter for the differential harness;
/// bit-identical matchings by construction.
class RoundRobinScanArbiter final : public SwitchArbiter {
 public:
  explicit RoundRobinScanArbiter(std::uint32_t ports);

  [[nodiscard]] const char* name() const override { return "rr-scan"; }
  void arbitrate_into(const CandidateSet& candidates,
                      Matching& matching) override;
  void snap(snapshot::Walker& w) override;

 private:
  std::uint32_t ports_;
  std::vector<std::uint32_t> grant_ptr_;
  std::vector<std::uint32_t> accept_ptr_;
  std::vector<std::int32_t> request_;  ///< (input, output) -> candidate index
};

}  // namespace mmr
