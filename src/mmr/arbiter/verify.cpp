#include "mmr/arbiter/verify.hpp"

#include <sstream>

namespace mmr {

MatchingCheck check_matching(const CandidateSet& candidates,
                             const Matching& matching) {
  MatchingCheck result;
  auto fail = [&result](const std::string& why) {
    result.valid = false;
    if (result.problem.empty()) result.problem = why;
  };

  if (matching.ports() != candidates.ports()) {
    fail("port count mismatch");
    return result;
  }

  std::uint32_t counted = 0;
  for (std::uint32_t in = 0; in < matching.ports(); ++in) {
    const std::int32_t out = matching.output_of(in);
    if (out == -1) {
      if (matching.candidate_of(in) != -1)
        fail("unmatched input carries a candidate index");
      continue;
    }
    ++counted;
    if (matching.input_of(static_cast<std::uint32_t>(out)) !=
        static_cast<std::int32_t>(in)) {
      fail("input/output cross references disagree");
      continue;
    }
    const std::int32_t cand = matching.candidate_of(in);
    if (cand < 0 ||
        static_cast<std::size_t>(cand) >= candidates.all().size()) {
      fail("matched input has no valid candidate index");
      continue;
    }
    const Candidate& c = candidates.at(static_cast<std::size_t>(cand));
    if (c.input != in || static_cast<std::int32_t>(c.output) != out) {
      std::ostringstream why;
      why << "candidate " << cand << " is (" << c.input << "->" << c.output
          << ") but matching says (" << in << "->" << out << ")";
      fail(why.str());
    }
  }
  if (counted != matching.size()) fail("matching size bookkeeping disagrees");
  return result;
}

bool is_maximal(const CandidateSet& candidates, const Matching& matching) {
  for (const Candidate& c : candidates.all()) {
    if (!matching.input_matched(c.input) &&
        !matching.output_matched(c.output)) {
      return false;
    }
  }
  return true;
}

}  // namespace mmr
