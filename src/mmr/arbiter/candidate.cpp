#include "mmr/arbiter/candidate.hpp"

#include "mmr/perf/probe.hpp"

namespace mmr {

CandidateSet::CandidateSet(std::uint32_t ports, std::uint32_t levels)
    : ports_(ports), levels_(levels) {
  MMR_ASSERT(ports_ > 0);
  MMR_ASSERT(levels_ > 0);
  slot_index_.assign(static_cast<std::size_t>(ports_) * levels_, -1);
}

void CandidateSet::clear() {
  flat_.clear();
  slot_index_.assign(slot_index_.size(), -1);
}

void CandidateSet::add(const Candidate& candidate) {
  MMR_ASSERT(candidate.input < ports_);
  MMR_ASSERT(candidate.output < ports_);
  MMR_ASSERT(candidate.level < levels_);
  const std::size_t s = slot(candidate.input, candidate.level);
  MMR_ASSERT_MSG(slot_index_[s] == -1, "duplicate (input, level) candidate");
  if (candidate.level > 0) {
    MMR_ASSERT_MSG(slot_index_[slot(candidate.input, candidate.level - 1)] != -1,
                   "candidate levels must be contiguous from 0");
  }
  slot_index_[s] = static_cast<std::int32_t>(flat_.size());
  if (flat_.size() == flat_.capacity())
    MMR_PERF_COUNT(perf::Counter::kCandidateRealloc, 1);
  flat_.push_back(candidate);
}

std::int32_t CandidateSet::index_of(std::uint32_t input,
                                    std::uint32_t level) const {
  MMR_ASSERT(input < ports_);
  MMR_ASSERT(level < levels_);
  return slot_index_[slot(input, level)];
}

std::uint32_t CandidateSet::levels_used(std::uint32_t input) const {
  std::uint32_t used = 0;
  while (used < levels_ && index_of(input, used) != -1) ++used;
  return used;
}

void CandidateSet::check_invariants() const {
  for (std::uint32_t input = 0; input < ports_; ++input) {
    bool gap = false;
    Priority prev = ~Priority{0};
    for (std::uint32_t level = 0; level < levels_; ++level) {
      const std::int32_t idx = index_of(input, level);
      if (idx == -1) {
        gap = true;
        continue;
      }
      MMR_ASSERT_MSG(!gap, "candidate level gap");
      const Candidate& c = at(static_cast<std::size_t>(idx));
      MMR_ASSERT(c.input == input);
      MMR_ASSERT(c.level == level);
      MMR_ASSERT(c.output < ports_);
      MMR_ASSERT_MSG(c.priority <= prev,
                     "candidate priorities must not increase with level");
      prev = c.priority;
    }
  }
}

}  // namespace mmr
