#include "mmr/arbiter/islip.hpp"

#include <bit>

namespace mmr {

IslipArbiter::IslipArbiter(std::uint32_t ports, std::uint32_t iterations)
    : ports_(ports),
      iterations_(iterations != 0 ? iterations
                                  : std::bit_width(ports) + 1u),
      grant_ptr_(ports, 0),
      accept_ptr_(ports, 0) {
  MMR_ASSERT(ports_ > 0);
}

void IslipArbiter::arbitrate_into(const CandidateSet& candidates,
                                  Matching& matching) {
  MMR_ASSERT(candidates.ports() == ports_);
  matching.reset(ports_);

  request_.assign(static_cast<std::size_t>(ports_) * ports_, -1);
  const auto& all = candidates.all();
  for (std::size_t idx = 0; idx < all.size(); ++idx) {
    const Candidate& c = all[idx];
    std::int32_t& cell =
        request_[static_cast<std::size_t>(c.input) * ports_ + c.output];
    if (cell == -1 || c.level < all[static_cast<std::size_t>(cell)].level)
      cell = static_cast<std::int32_t>(idx);
  }

  std::vector<std::int32_t> grant_of_input(ports_);
  for (std::uint32_t iter = 0; iter < iterations_; ++iter) {
    // --- Grant: every unmatched output picks the first requesting,
    // unmatched input at or after its grant pointer.
    std::fill(grant_of_input.begin(), grant_of_input.end(), -1);
    bool any_grant = false;
    for (std::uint32_t out = 0; out < ports_; ++out) {
      if (matching.output_matched(out)) continue;
      for (std::uint32_t k = 0; k < ports_; ++k) {
        const std::uint32_t in = (grant_ptr_[out] + k) % ports_;
        if (matching.input_matched(in)) continue;
        if (request_[static_cast<std::size_t>(in) * ports_ + out] == -1)
          continue;
        // Several outputs may grant the same input; the input accepts one.
        if (grant_of_input[in] == -1) {
          grant_of_input[in] = static_cast<std::int32_t>(out);
        } else {
          // Keep the grant the accept pointer prefers.
          const auto cur = static_cast<std::uint32_t>(grant_of_input[in]);
          const std::uint32_t a = accept_ptr_[in];
          const std::uint32_t cur_rank = (cur + ports_ - a) % ports_;
          const std::uint32_t new_rank = (out + ports_ - a) % ports_;
          if (new_rank < cur_rank)
            grant_of_input[in] = static_cast<std::int32_t>(out);
        }
        any_grant = true;
        break;  // one grant per output
      }
    }
    if (!any_grant) break;

    // --- Accept: every input with grants accepts the preferred one;
    // pointers advance only on first-iteration accepts (standard iSLIP,
    // which is what gives it its fairness/desynchronisation property).
    bool any_accept = false;
    for (std::uint32_t in = 0; in < ports_; ++in) {
      if (grant_of_input[in] == -1) continue;
      const auto out = static_cast<std::uint32_t>(grant_of_input[in]);
      const std::int32_t cell =
          request_[static_cast<std::size_t>(in) * ports_ + out];
      MMR_ASSERT(cell != -1);
      matching.match(in, out, cell);
      any_accept = true;
      if (iter == 0) {
        accept_ptr_[in] = (out + 1) % ports_;
        grant_ptr_[out] = (in + 1) % ports_;
      }
    }
    if (!any_accept) break;
  }
}

}  // namespace mmr
