#include "mmr/arbiter/islip.hpp"

#include "mmr/snapshot/walker.hpp"

#include <algorithm>
#include <bit>

namespace mmr {

IslipArbiter::IslipArbiter(std::uint32_t ports, std::uint32_t iterations)
    : ports_(ports),
      words_(bit_words(ports)),
      iterations_(iterations != 0 ? iterations
                                  : std::bit_width(ports) + 1u),
      grant_ptr_(ports, 0),
      accept_ptr_(ports, 0) {
  MMR_ASSERT(ports_ > 0);
  MMR_ASSERT(ports_ <= kMaxPorts);
}

void IslipArbiter::arbitrate_into(const CandidateSet& candidates,
                                  Matching& matching) {
  MMR_ASSERT(candidates.ports() == ports_);
  matching.reset(ports_);
  requests_.build(candidates);

  free_in_.assign(words_, 0);
  free_out_.assign(words_, 0);
  std::copy_n(requests_.live_inputs(), words_, free_in_.data());
  std::copy_n(requests_.live_outputs(), words_, free_out_.data());
  scratch_.resize(words_);
  granted_.resize(words_);
  grant_of_input_.assign(ports_, -1);

  for (std::uint32_t iter = 0; iter < iterations_; ++iter) {
    // --- Grant: every unmatched output picks the first requesting,
    // unmatched input at or after its grant pointer — a cyclic first-set-bit
    // search over `inputs_of(out) & free_in`.
    std::fill(granted_.begin(), granted_.end(), 0);
    bool any_grant = false;
    for (std::uint32_t w = 0; w < words_; ++w) {
      std::uint64_t outs = free_out_[w];
      const std::uint32_t base = w * kBitsPerWord;
      while (outs != 0) {
        const std::uint32_t out =
            base + static_cast<std::uint32_t>(std::countr_zero(outs));
        outs &= outs - 1;
        const std::uint64_t* row = requests_.inputs_of(out);
        for (std::uint32_t k = 0; k < words_; ++k) scratch_[k] = row[k] & free_in_[k];
        const std::int32_t pos =
            bits_first_cyclic(scratch_.data(), words_, grant_ptr_[out]);
        if (pos == -1) continue;
        const auto in = static_cast<std::uint32_t>(pos);
        any_grant = true;
        // Several outputs may grant the same input; the input accepts the
        // grant its accept pointer prefers.
        if (grant_of_input_[in] == -1 || !bits_test(granted_.data(), in)) {
          grant_of_input_[in] = static_cast<std::int32_t>(out);
          bits_set(granted_.data(), in);
        } else {
          const auto cur = static_cast<std::uint32_t>(grant_of_input_[in]);
          const std::uint32_t a = accept_ptr_[in];
          const std::uint32_t cur_rank = (cur + ports_ - a) % ports_;
          const std::uint32_t new_rank = (out + ports_ - a) % ports_;
          if (new_rank < cur_rank)
            grant_of_input_[in] = static_cast<std::int32_t>(out);
        }
      }
    }
    if (!any_grant) break;

    // --- Accept: every input with grants accepts the preferred one;
    // pointers advance only on first-iteration accepts (standard iSLIP,
    // which is what gives it its fairness/desynchronisation property).
    bool any_accept = false;
    for (std::uint32_t w = 0; w < words_; ++w) {
      std::uint64_t ins = granted_[w];
      const std::uint32_t base = w * kBitsPerWord;
      while (ins != 0) {
        const std::uint32_t in =
            base + static_cast<std::uint32_t>(std::countr_zero(ins));
        ins &= ins - 1;
        const auto out = static_cast<std::uint32_t>(grant_of_input_[in]);
        const std::int32_t cell = requests_.cell(in, out);
        MMR_ASSERT(cell != -1);
        matching.match(in, out, cell);
        bits_clear(free_in_.data(), in);
        bits_clear(free_out_.data(), out);
        any_accept = true;
        if (iter == 0) {
          accept_ptr_[in] = (out + 1) % ports_;
          grant_ptr_[out] = (in + 1) % ports_;
        }
      }
    }
    if (!any_accept) break;
  }
}

IslipScanArbiter::IslipScanArbiter(std::uint32_t ports,
                                   std::uint32_t iterations)
    : ports_(ports),
      iterations_(iterations != 0 ? iterations
                                  : std::bit_width(ports) + 1u),
      grant_ptr_(ports, 0),
      accept_ptr_(ports, 0) {
  MMR_ASSERT(ports_ > 0);
}

void IslipScanArbiter::arbitrate_into(const CandidateSet& candidates,
                                      Matching& matching) {
  MMR_ASSERT(candidates.ports() == ports_);
  matching.reset(ports_);

  request_.assign(static_cast<std::size_t>(ports_) * ports_, -1);
  const auto& all = candidates.all();
  for (std::size_t idx = 0; idx < all.size(); ++idx) {
    const Candidate& c = all[idx];
    std::int32_t& cell =
        request_[static_cast<std::size_t>(c.input) * ports_ + c.output];
    if (cell == -1 || c.level < all[static_cast<std::size_t>(cell)].level)
      cell = static_cast<std::int32_t>(idx);
  }

  std::vector<std::int32_t> grant_of_input(ports_);
  for (std::uint32_t iter = 0; iter < iterations_; ++iter) {
    std::fill(grant_of_input.begin(), grant_of_input.end(), -1);
    bool any_grant = false;
    for (std::uint32_t out = 0; out < ports_; ++out) {
      if (matching.output_matched(out)) continue;
      for (std::uint32_t k = 0; k < ports_; ++k) {
        const std::uint32_t in = (grant_ptr_[out] + k) % ports_;
        if (matching.input_matched(in)) continue;
        if (request_[static_cast<std::size_t>(in) * ports_ + out] == -1)
          continue;
        if (grant_of_input[in] == -1) {
          grant_of_input[in] = static_cast<std::int32_t>(out);
        } else {
          const auto cur = static_cast<std::uint32_t>(grant_of_input[in]);
          const std::uint32_t a = accept_ptr_[in];
          const std::uint32_t cur_rank = (cur + ports_ - a) % ports_;
          const std::uint32_t new_rank = (out + ports_ - a) % ports_;
          if (new_rank < cur_rank)
            grant_of_input[in] = static_cast<std::int32_t>(out);
        }
        any_grant = true;
        break;  // one grant per output
      }
    }
    if (!any_grant) break;

    bool any_accept = false;
    for (std::uint32_t in = 0; in < ports_; ++in) {
      if (grant_of_input[in] == -1) continue;
      const auto out = static_cast<std::uint32_t>(grant_of_input[in]);
      const std::int32_t cell =
          request_[static_cast<std::size_t>(in) * ports_ + out];
      MMR_ASSERT(cell != -1);
      matching.match(in, out, cell);
      any_accept = true;
      if (iter == 0) {
        accept_ptr_[in] = (out + 1) % ports_;
        grant_ptr_[out] = (in + 1) % ports_;
      }
    }
    if (!any_accept) break;
  }
}

void IslipArbiter::snap(snapshot::Walker& w) {
  snapshot::walk_vector_pod(w, grant_ptr_);
  snapshot::walk_vector_pod(w, accept_ptr_);
  requests_.snap(w);
}

void IslipScanArbiter::snap(snapshot::Walker& w) {
  snapshot::walk_vector_pod(w, grant_ptr_);
  snapshot::walk_vector_pod(w, accept_ptr_);
}

}  // namespace mmr
