// Candidate sets: the interface between link scheduling and switch
// scheduling.  Every input port contributes up to L candidates (its L
// highest-priority virtual channels); level 0 is the highest-priority
// candidate of that port (the paper's "level one").
#pragma once

#include <cstdint>
#include <vector>

#include "mmr/sim/assert.hpp"

namespace mmr {

/// Priority values are unsigned and saturating; larger means more urgent.
using Priority = std::uint64_t;

struct Candidate {
  std::uint16_t input = 0;   ///< input port
  std::uint16_t output = 0;  ///< requested output port
  std::uint8_t level = 0;    ///< candidate level at its input (0 = highest)
  std::uint32_t vc = 0;      ///< virtual channel within the input link
  Priority priority = 0;     ///< biased priority of the head flit
};

/// The selection-matrix contents for one arbitration: at most one candidate
/// per (input, level).  Candidates must be added level-consistently: for a
/// given input, level l may only be present when levels 0..l-1 are.
class CandidateSet {
 public:
  CandidateSet(std::uint32_t ports, std::uint32_t levels);

  void clear();
  void add(const Candidate& candidate);

  [[nodiscard]] std::uint32_t ports() const { return ports_; }
  [[nodiscard]] std::uint32_t levels() const { return levels_; }
  [[nodiscard]] const std::vector<Candidate>& all() const { return flat_; }
  [[nodiscard]] bool empty() const { return flat_.empty(); }
  [[nodiscard]] std::size_t size() const { return flat_.size(); }

  /// Index into all() of the candidate at (input, level), or -1 if absent.
  [[nodiscard]] std::int32_t index_of(std::uint32_t input,
                                      std::uint32_t level) const;

  [[nodiscard]] const Candidate& at(std::size_t index) const {
    MMR_ASSERT(index < flat_.size());
    return flat_[index];
  }

  /// Number of candidates contributed by one input port.
  [[nodiscard]] std::uint32_t levels_used(std::uint32_t input) const;

  /// Invariant check used by tests and debug paths: level consistency,
  /// in-range ports, strictly non-increasing priorities per input.
  void check_invariants() const;

 private:
  [[nodiscard]] std::size_t slot(std::uint32_t input,
                                 std::uint32_t level) const {
    return static_cast<std::size_t>(input) * levels_ + level;
  }

  std::uint32_t ports_;
  std::uint32_t levels_;
  std::vector<Candidate> flat_;
  std::vector<std::int32_t> slot_index_;  ///< (input, level) -> flat index
};

}  // namespace mmr
