// Maximum-size bipartite matching via Hopcroft-Karp.  Not implementable at
// router speed — included as the oracle upper bound on matching size, which
// is what the paper's WFA reference claims to approach.
#pragma once

#include "mmr/arbiter/candidate.hpp"
#include "mmr/arbiter/matching.hpp"

namespace mmr {

class MaxMatchArbiter final : public SwitchArbiter {
 public:
  explicit MaxMatchArbiter(std::uint32_t ports);

  [[nodiscard]] const char* name() const override { return "maxmatch"; }

  void arbitrate_into(const CandidateSet& candidates,
                      Matching& matching) override;

  /// Size of the maximum matching of an arbitrary request graph, usable
  /// directly by tests (adjacency: per input, list of outputs).
  static std::uint32_t max_matching_size(
      std::uint32_t ports, const std::vector<std::vector<std::uint32_t>>& adj);

 private:
  std::uint32_t ports_;
};

}  // namespace mmr
