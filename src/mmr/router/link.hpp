// Fixed-latency, one-item-per-cycle conduits: the physical link between NIC
// and router (flits) travels through one of these.  Links are short in the
// target environment (cluster/LAN), so latencies are a cycle or two.
#pragma once

#include <deque>
#include <vector>

#include "mmr/sim/time.hpp"
#include "mmr/traffic/flit.hpp"

namespace mmr {

namespace snapshot {
class Walker;
}

/// A flit in flight on a physical link, tagged with its VC.
struct LinkTransfer {
  Flit flit;
  std::uint32_t vc = 0;
};

class LinkPipeline {
 public:
  explicit LinkPipeline(Cycle latency);

  [[nodiscard]] Cycle latency() const { return latency_; }
  [[nodiscard]] std::size_t in_flight() const { return in_flight_.size(); }

  /// One transfer may start per cycle (the link carries one flit at a time).
  void push(const LinkTransfer& transfer, Cycle now);

  /// Appends transfers arriving at or before `now` (in order); call with
  /// non-decreasing `now`.
  void pop_due(Cycle now, std::vector<LinkTransfer>& out);

  /// Total flits ever carried (for utilization accounting).
  [[nodiscard]] std::uint64_t carried() const { return carried_; }

  /// In-flight transfers tagged with `vc` (fault audits).
  [[nodiscard]] std::uint32_t in_flight_on_vc(std::uint32_t vc) const;

  /// Fault handling: removes every in-flight transfer tagged with `vc`
  /// (connection teardown) or all of them (the link went down).  Returns
  /// how many were removed.
  std::uint32_t drain_vc(std::uint32_t vc);
  std::uint32_t drain_all();

  void snap(snapshot::Walker& w);

 private:
  struct InFlight {
    Cycle arrives;
    LinkTransfer transfer;
  };

  Cycle latency_;
  Cycle last_push_ = kNever;  ///< enforces one push per cycle
  Cycle last_pop_ = 0;        ///< enforces non-decreasing pop_due() times
  std::deque<InFlight> in_flight_;
  std::uint64_t carried_ = 0;
};

}  // namespace mmr
