#include "mmr/router/router.hpp"

#include "mmr/snapshot/walker.hpp"

#include <algorithm>

#include "mmr/arbiter/verify.hpp"
#include "mmr/perf/probe.hpp"
#include "mmr/sim/assert.hpp"
#include "mmr/trace/event.hpp"
#include "mmr/trace/tracer.hpp"

namespace mmr {

MmrRouter::MmrRouter(const SimConfig& config, const ConnectionTable& table,
                     Rng rng)
    : ports_(config.ports),
      qd_(QdSpec::parse(config.qd_spec)),
      arbiter_(make_arbiter(config.arbiter, config.ports, rng.fork(0xA9B1))),
      crossbar_(config.ports),
      candidates_(config.ports, config.candidate_levels),
      matching_(config.ports) {
  config.validate();
  qd_.validate();
  MMR_ASSERT(table.ports() == ports_);

  const TimeBase time_base = config.time_base();
  const RoundAccounting rounds(config.flit_cycles_per_round(), time_base);
  // Demoted (policed-excess) flits claim one slot at the IAT a one-slot
  // reservation would have — the weakest admitted footprint.
  QosParams demoted;
  demoted.slots_per_round = 1;
  demoted.iat_router_cycles =
      rounds.iat_router_cycles(rounds.bandwidth_for_slots(1));

  if (qd_.discipline == QueueDiscipline::kVc) {
    vcms_.reserve(ports_);
    link_schedulers_.reserve(ports_);
    for (std::uint32_t port = 0; port < ports_; ++port) {
      vcms_.emplace_back(config.vcs_per_link, config.buffer_flits_per_vc);

      std::vector<std::uint32_t> output_of_vc(config.vcs_per_link, 0);
      std::vector<QosParams> qos_of_vc(config.vcs_per_link);
      for (ConnectionId id : table.on_input_link(port)) {
        const ConnectionDescriptor& c = table.get(id);
        output_of_vc[c.vc] = c.output_link;
        QosParams qos;
        // Best-effort connections reserve nothing; they bias from the minimum
        // initial priority, so QoS traffic dominates them until they age.
        qos.slots_per_round = std::max<std::uint32_t>(1, c.slots_per_round);
        qos.iat_router_cycles =
            rounds.iat_router_cycles(std::max(c.mean_bandwidth_bps, 1.0));
        qos_of_vc[c.vc] = qos;
      }
      link_schedulers_.emplace_back(port, config.candidate_levels,
                                    PriorityFunction(config.priority_scheme),
                                    time_base.phits_per_flit(),
                                    std::move(output_of_vc),
                                    std::move(qos_of_vc));
      link_schedulers_.back().set_demoted_qos(demoted);
    }
    return;
  }

  // VOQ-based disciplines: one VOQ bank per input; the VC -> output routing
  // that the link schedulers carry under kVc lives in voq_output_of_vc_.
  voqs_.reserve(ports_);
  voq_output_of_vc_.reserve(ports_);
  if (qd_.discipline == QueueDiscipline::kVoq)
    voq_schedulers_.reserve(ports_);
  for (std::uint32_t port = 0; port < ports_; ++port) {
    voqs_.emplace_back(ports_, config.vcs_per_link,
                       config.buffer_flits_per_vc);
    std::vector<std::uint32_t> output_of_vc(config.vcs_per_link, 0);
    std::vector<QosParams> qos_of_vc(config.vcs_per_link);
    for (ConnectionId id : table.on_input_link(port)) {
      const ConnectionDescriptor& c = table.get(id);
      output_of_vc[c.vc] = c.output_link;
      QosParams qos;
      qos.slots_per_round = std::max<std::uint32_t>(1, c.slots_per_round);
      qos.iat_router_cycles =
          rounds.iat_router_cycles(std::max(c.mean_bandwidth_bps, 1.0));
      qos_of_vc[c.vc] = qos;
    }
    voq_output_of_vc_.push_back(std::move(output_of_vc));
    if (qd_.discipline == QueueDiscipline::kVoq) {
      voq_schedulers_.emplace_back(port, config.candidate_levels,
                                   PriorityFunction(config.priority_scheme),
                                   time_base.phits_per_flit(),
                                   std::move(qos_of_vc));
      voq_schedulers_.back().set_demoted_qos(demoted);
    }
  }
  if (qd_.discipline == QueueDiscipline::kCicq) {
    cicq_ = std::make_unique<CicqFabric>(ports_, config.vcs_per_link, qd_,
                                         config.credit_latency);
  }
}

bool MmrRouter::can_accept(std::uint32_t input, std::uint32_t vc) const {
  MMR_ASSERT(input < ports_);
  if (qd_.discipline == QueueDiscipline::kVc)
    return vcms_[input].can_accept(vc);
  return voqs_[input].can_accept(vc);
}

void MmrRouter::accept(std::uint32_t input, std::uint32_t vc, const Flit& flit,
                       Cycle now) {
  MMR_ASSERT(input < ports_);
  if (qd_.discipline == QueueDiscipline::kVc) {
    vcms_[input].push(vc, flit, now);
  } else {
    voqs_[input].push(voq_output_of_vc_[input][vc], vc, flit, now);
  }
  ++accepted_;
  MMR_TRACE_EVENT(
      trace::vc_enqueue_event(now, input, vc, flit.connection, flit.seq));
}

void MmrRouter::step(Cycle now, bool measure,
                     std::vector<Departure>& departures) {
  switch (qd_.discipline) {
    case QueueDiscipline::kVc:
      step_vc(now, measure, departures);
      return;
    case QueueDiscipline::kVoq:
      step_voq(now, measure, departures);
      return;
    case QueueDiscipline::kCicq:
      step_cicq(now, measure, departures);
      return;
  }
}

void MmrRouter::step_vc(Cycle now, bool measure,
                        std::vector<Departure>& departures) {
  // Link scheduling: every input port offers its top-L candidates.
  {
    MMR_PERF_SCOPE(perf::Phase::kLinkSchedule);
    candidates_.clear();
    for (std::uint32_t port = 0; port < ports_; ++port) {
      if (eligibility_) {
        const LinkScheduler::Eligibility eligible =
            [this, port](std::uint32_t vc) { return eligibility_(port, vc); };
        link_schedulers_[port].select(vcms_[port], now, candidates_,
                                      &eligible);
      } else {
        link_schedulers_[port].select(vcms_[port], now, candidates_);
      }
    }
  }

  // Switch scheduling, into the recycled matching buffer.
  {
    MMR_PERF_SCOPE(perf::Phase::kArbitration);
    arbiter_->arbitrate_into(candidates_, matching_);
    const MatchingCheck check = check_matching(candidates_, matching_);
    MMR_ASSERT_MSG(check.valid, check.problem.c_str());
  }

  // Router-side grant/deny record for every offered candidate (the arbiter
  // additionally emits kGrantReason with its algorithm-specific detail).
  if (MMR_TRACE_ON()) {
    for (std::size_t index = 0; index < candidates_.size(); ++index) {
      const Candidate& c = candidates_.at(index);
      const bool granted = matching_.candidate_of(c.input) ==
                           static_cast<std::int32_t>(index);
      MMR_TRACE_EVENT(trace::grant_event(now, c.input, c.output, c.vc,
                                         c.level, c.priority, granted));
    }
  }

  // Synchronous crossbar transit of every matched head flit.
  MMR_PERF_SCOPE(perf::Phase::kCrossbar);
  crossbar_.apply(matching_, measure);
  for (std::uint32_t input = 0; input < ports_; ++input) {
    const std::int32_t cand_index = matching_.candidate_of(input);
    if (cand_index == -1) continue;
    const Candidate& granted =
        candidates_.at(static_cast<std::size_t>(cand_index));
    MMR_ASSERT(granted.input == input);
    Departure departure;
    departure.input = input;
    departure.output = granted.output;
    departure.vc = granted.vc;
    departure.flit = vcms_[input].pop(granted.vc);
    MMR_ASSERT_MSG(departure.flit.connection != kInvalidConnection,
                   "granted VC held no real flit");
    MMR_TRACE_EVENT(trace::xbar_event(now, input, departure.output,
                                      departure.vc, departure.flit.connection,
                                      departure.flit.seq));
    if (departures.size() == departures.capacity())
      MMR_PERF_COUNT(perf::Counter::kDepartureRealloc, 1);
    departures.push_back(departure);
    ++departed_;
  }
}

void MmrRouter::step_voq(Cycle now, bool measure,
                         std::vector<Departure>& departures) {
  // Same pipeline as step_vc, with candidates drawn from VOQ heads.  The
  // arbiter contract is unchanged: a candidate's output is its VOQ index and
  // a grant dequeues exactly that VOQ's head, whose VC the candidate named.
  {
    MMR_PERF_SCOPE(perf::Phase::kLinkSchedule);
    candidates_.clear();
    for (std::uint32_t port = 0; port < ports_; ++port) {
      if (eligibility_) {
        const VoqScheduler::Eligibility eligible =
            [this, port](std::uint32_t vc) { return eligibility_(port, vc); };
        voq_schedulers_[port].select(voqs_[port], now, candidates_, &eligible);
      } else {
        voq_schedulers_[port].select(voqs_[port], now, candidates_);
      }
    }
  }

  {
    MMR_PERF_SCOPE(perf::Phase::kArbitration);
    arbiter_->arbitrate_into(candidates_, matching_);
    const MatchingCheck check = check_matching(candidates_, matching_);
    MMR_ASSERT_MSG(check.valid, check.problem.c_str());
  }

  if (MMR_TRACE_ON()) {
    for (std::size_t index = 0; index < candidates_.size(); ++index) {
      const Candidate& c = candidates_.at(index);
      const bool granted = matching_.candidate_of(c.input) ==
                           static_cast<std::int32_t>(index);
      MMR_TRACE_EVENT(trace::grant_event(now, c.input, c.output, c.vc,
                                         c.level, c.priority, granted));
    }
  }

  MMR_PERF_SCOPE(perf::Phase::kCrossbar);
  crossbar_.apply(matching_, measure);
  for (std::uint32_t input = 0; input < ports_; ++input) {
    const std::int32_t cand_index = matching_.candidate_of(input);
    if (cand_index == -1) continue;
    const Candidate& granted =
        candidates_.at(static_cast<std::size_t>(cand_index));
    MMR_ASSERT(granted.input == input);
    const VoqMemory::Slot slot = voqs_[input].pop(granted.output);
    // Nothing touched the VOQ between select and the grant, so the head the
    // candidate described is the head we dequeued.
    MMR_ASSERT_MSG(slot.vc == granted.vc,
                   "granted VOQ head changed between select and grant");
    Departure departure;
    departure.input = input;
    departure.output = granted.output;
    departure.vc = slot.vc;
    departure.flit = slot.flit;
    MMR_ASSERT_MSG(departure.flit.connection != kInvalidConnection,
                   "granted VOQ held no real flit");
    MMR_TRACE_EVENT(trace::xbar_event(now, input, departure.output,
                                      departure.vc, departure.flit.connection,
                                      departure.flit.seq));
    if (departures.size() == departures.capacity())
      MMR_PERF_COUNT(perf::Counter::kDepartureRealloc, 1);
    departures.push_back(departure);
    ++departed_;
  }
}

void MmrRouter::step_cicq(Cycle now, bool measure,
                          std::vector<Departure>& departures) {
  // Distributed CICQ cycle: mature credit returns, drain the output stage
  // (registered crosspoint buffers — only start-of-cycle occupants leave),
  // then refill from the VOQs and run stabilization bookkeeping.
  cicq_->tick(now);

  {
    MMR_PERF_SCOPE(perf::Phase::kArbitration);
    drained_scratch_.clear();
    cicq_->drain_outputs(now, drained_scratch_, xp_pick_scratch_);
  }

  {
    MMR_PERF_SCOPE(perf::Phase::kCrossbar);
    crossbar_.apply_outputs(xp_pick_scratch_, measure);
    for (const CicqFabric::Drained& drained : drained_scratch_) {
      Departure departure;
      departure.input = drained.input;
      departure.output = drained.output;
      departure.vc = drained.vc;
      departure.flit = drained.flit;
      MMR_TRACE_EVENT(trace::xbar_event(now, departure.input, departure.output,
                                        departure.vc,
                                        departure.flit.connection,
                                        departure.flit.seq));
      if (departures.size() == departures.capacity())
        MMR_PERF_COUNT(perf::Counter::kDepartureRealloc, 1);
      departures.push_back(departure);
      ++departed_;
    }
  }

  {
    MMR_PERF_SCOPE(perf::Phase::kLinkSchedule);
    if (eligibility_) {
      const CicqFabric::Eligibility eligible = eligibility_;
      cicq_->fill_crosspoints(now, voqs_, &eligible);
    } else {
      cicq_->fill_crosspoints(now, voqs_, nullptr);
    }
    cicq_->update_stabilization(voqs_);
  }
}

void MmrRouter::install_vc(std::uint32_t input, std::uint32_t vc,
                           std::uint32_t output, QosParams qos) {
  MMR_ASSERT(input < ports_);
  MMR_ASSERT(output < ports_);
  if (qd_.discipline == QueueDiscipline::kVc) {
    link_schedulers_[input].set_vc(vc, output, qos);
    return;
  }
  voq_output_of_vc_[input][vc] = output;
  if (qd_.discipline == QueueDiscipline::kVoq)
    voq_schedulers_[input].set_vc(vc, qos);
}

std::uint32_t MmrRouter::drain_vc(std::uint32_t input, std::uint32_t vc) {
  MMR_ASSERT(input < ports_);
  MMR_ASSERT_MSG(qd_.discipline == QueueDiscipline::kVc,
                 "drain_vc requires the per-VC discipline (network runs "
                 "reject qd=voq/cicq at configuration parse)");
  std::uint32_t count = 0;
  while (!vcms_[input].empty(vc)) {
    (void)vcms_[input].pop(vc);
    ++count;
  }
  drained_ += count;
  return count;
}

const VirtualChannelMemory& MmrRouter::vcm(std::uint32_t input) const {
  MMR_ASSERT(input < ports_);
  MMR_ASSERT(qd_.discipline == QueueDiscipline::kVc);
  return vcms_[input];
}

const VoqMemory& MmrRouter::voq(std::uint32_t input) const {
  MMR_ASSERT(input < ports_);
  MMR_ASSERT(qd_.discipline != QueueDiscipline::kVc);
  return voqs_[input];
}

std::uint32_t MmrRouter::vc_occupancy(std::uint32_t input,
                                      std::uint32_t vc) const {
  MMR_ASSERT(input < ports_);
  switch (qd_.discipline) {
    case QueueDiscipline::kVc:
      return vcms_[input].occupancy(vc);
    case QueueDiscipline::kVoq:
      return voqs_[input].vc_occupancy(vc);
    case QueueDiscipline::kCicq:
      return voqs_[input].vc_occupancy(vc) + cicq_->vc_occupancy(input, vc);
  }
  return 0;
}

void MmrRouter::check_invariants() const {
  std::uint64_t buffered = 0;
  for (const VirtualChannelMemory& vcm : vcms_) {
    vcm.check_invariants();
    buffered += vcm.total_flits();
  }
  for (const VoqMemory& voq : voqs_) {
    voq.check_invariants();
    buffered += voq.total_flits();
  }
  if (cicq_ != nullptr) {
    cicq_->check_invariants();
    buffered += cicq_->total_flits();
  }
  MMR_ASSERT(buffered == flits_buffered());
}

void MmrRouter::snap(snapshot::Walker& w) {
  // kVc keeps the original walk order byte-for-byte; the VOQ/CICQ sections
  // replace the VCM/link-scheduler sections entirely (the qd= override is
  // folded into config_digest, so a snapshot can never be resumed under a
  // different discipline).
  for (VirtualChannelMemory& vcm : vcms_) vcm.snap(w);
  for (LinkScheduler& scheduler : link_schedulers_) scheduler.snap(w);
  for (VoqMemory& voq : voqs_) voq.snap(w);
  for (VoqScheduler& scheduler : voq_schedulers_) scheduler.snap(w);
  if (cicq_ != nullptr) cicq_->snap(w);
  arbiter_->snap(w);
  crossbar_.snap(w);
  snapshot::value(w, accepted_);
  snapshot::value(w, departed_);
  snapshot::value(w, drained_);
}

}  // namespace mmr
