// Credit-based flow control between NIC and MMR (Section 2, "Flow
// Control").  One credit per VC buffer slot; the NIC consumes a credit when
// it forwards a flit and the router returns it (after a small propagation
// latency) when the flit leaves the VC buffer through the crossbar.  This
// is what lets the MMR avoid data losses with only a few flits of buffering.
#pragma once

#include <deque>
#include <vector>

#include "mmr/sim/time.hpp"

namespace mmr {

namespace snapshot {
class Walker;
}

class CreditManager {
 public:
  CreditManager(std::uint32_t vcs, std::uint32_t credits_per_vc,
                Cycle return_latency);

  [[nodiscard]] std::uint32_t vcs() const {
    return static_cast<std::uint32_t>(credits_.size());
  }
  [[nodiscard]] std::uint32_t credits(std::uint32_t vc) const;
  [[nodiscard]] bool has_credit(std::uint32_t vc) const {
    return credits(vc) > 0;
  }

  /// NIC side: consumes one credit to send a flit.
  void consume(std::uint32_t vc);

  /// Router side: schedules a credit return; it becomes usable at
  /// `now + return_latency`.
  void release(std::uint32_t vc, Cycle now);

  /// Applies every credit whose return has propagated by `now`.  Must be
  /// called with non-decreasing `now`.
  void tick(Cycle now);

  [[nodiscard]] std::uint32_t in_flight() const {
    return static_cast<std::uint32_t>(pending_.size());
  }

  /// Credits of `vc` currently travelling back (subset of in_flight()).
  [[nodiscard]] std::uint32_t pending_for(std::uint32_t vc) const;

  [[nodiscard]] std::uint32_t capacity_per_vc() const {
    return credits_per_vc_;
  }

  /// Fault recovery: re-creates `count` credits that leaked (their flits
  /// were lost on a faulty link, so no release() will ever arrive).  The
  /// caller — the credit-resync watchdog — is responsible for having audited
  /// that the credits are genuinely unaccounted for.  The CICQ burst-
  /// stabilization protocol uses the same entry point to unlock a
  /// crosspoint's parked credits when a VOQ backs up.
  void restore(std::uint32_t vc, std::uint32_t count);

  /// Inverse of restore(): parks `count` of `vc`'s immediately available
  /// credits so they cannot be consumed (CICQ base allotment — a crosspoint
  /// exposes one credit until burst stabilization unlocks its full depth).
  /// Only credits currently held can be parked; in-flight returns and
  /// occupied slots are untouchable.
  void reclaim(std::uint32_t vc, std::uint32_t count);

  void check_invariants() const;

  /// Checkpoint walk: live credit counts and every in-flight return.
  void snap(snapshot::Walker& w);

 private:
  struct PendingReturn {
    Cycle ready;
    std::uint32_t vc;
  };

  std::uint32_t credits_per_vc_;
  Cycle return_latency_;
  std::vector<std::uint32_t> credits_;
  std::deque<PendingReturn> pending_;  ///< FIFO: release() times non-decreasing
};

}  // namespace mmr
