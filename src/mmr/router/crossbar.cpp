#include "mmr/router/crossbar.hpp"

#include "mmr/sim/assert.hpp"
#include "mmr/snapshot/walker.hpp"

namespace mmr {

Crossbar::Crossbar(std::uint32_t ports) : input_of_output_(ports, -1) {
  MMR_ASSERT(ports > 0);
}

void Crossbar::apply(const Matching& matching, bool measure) {
  MMR_ASSERT(matching.ports() == ports());
  std::uint32_t changed = 0;
  for (std::uint32_t out = 0; out < ports(); ++out) {
    const std::int32_t in = matching.input_of(out);
    if (in != input_of_output_[out]) {
      ++changed;
      input_of_output_[out] = in;
    }
  }
  if (measure) {
    utilization_.add(matching.size(), ports());
    reconfigurations_.add(changed, 1);
    matching_size_.add(static_cast<double>(matching.size()));
  }
}

void Crossbar::apply_outputs(const std::vector<std::int32_t>& input_of_output,
                             bool measure) {
  MMR_ASSERT(input_of_output.size() == input_of_output_.size());
  std::uint32_t changed = 0;
  std::uint32_t served = 0;
  for (std::uint32_t out = 0; out < ports(); ++out) {
    const std::int32_t in = input_of_output[out];
    if (in != -1) ++served;
    if (in != input_of_output_[out]) {
      ++changed;
      input_of_output_[out] = in;
    }
  }
  if (measure) {
    utilization_.add(served, ports());
    reconfigurations_.add(changed, 1);
    matching_size_.add(static_cast<double>(served));
  }
}

std::int32_t Crossbar::input_of(std::uint32_t output) const {
  MMR_ASSERT(output < ports());
  return input_of_output_[output];
}

void Crossbar::snap(snapshot::Walker& w) {
  snapshot::walk_vector_pod(w, input_of_output_);
  utilization_.snap(w);
  reconfigurations_.snap(w);
  matching_size_.snap(w);
}

}  // namespace mmr
