// Combined input-crosspoint queueing fabric (`qd=cicq`, after Gunther,
// PAPERS.md): a small buffer at every (input, output) crosspoint decouples
// the input stage from the output stage, replacing centralized switch
// arbitration with two independent round-robin schedulers —
//
//   * the output stage drains at most one crosspoint per output per cycle
//     (round-robin over inputs with a buffered flit), and
//   * the input stage moves at most one VOQ head per input per cycle into
//     its crosspoint (round-robin over outputs with work and credit).
//
// Crosspoint space is credit-controlled per input: the base regime exposes a
// single credit per crosspoint, so a burst to one output serializes on the
// credit round-trip (send, wait for the drain + return latency, send again)
// and collapses throughput to 1/(1 + RTT) while work piles up in the VOQ —
// Gunther's instability.  The burst-stabilization protocol (`stab:1`)
// unlocks the crosspoint's full depth when its VOQ backs up past the burst
// threshold, pipelining the round-trip; the parked credits are reclaimed
// once the burst fully drains.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "mmr/router/credits.hpp"
#include "mmr/router/qd_spec.hpp"
#include "mmr/router/voq.hpp"
#include "mmr/sim/time.hpp"

namespace mmr {

namespace snapshot {
class Walker;
}

class CicqFabric {
 public:
  CicqFabric(std::uint32_t ports, std::uint32_t vcs, const QdSpec& spec,
             Cycle credit_latency);

  /// A flit the output stage drained this cycle (becomes a Departure).
  struct Drained {
    std::uint32_t input = 0;
    std::uint32_t output = 0;
    std::uint32_t vc = 0;
    Flit flit;
  };

  using Eligibility =
      std::function<bool(std::uint32_t input, std::uint32_t vc)>;

  /// Applies matured credit returns.  Call once at the top of the cycle.
  void tick(Cycle now);

  /// Output stage.  Crosspoints behave as registered buffers: only flits
  /// already present at the start of the cycle are drainable, which is why
  /// this runs before fill_crosspoints().  Appends one Drained per served
  /// output (ascending output order) and records the per-output input pick
  /// in `input_of_output` (-1 = idle) for crossbar statistics.
  void drain_outputs(Cycle now, std::vector<Drained>& out,
                     std::vector<std::int32_t>& input_of_output);

  /// Input stage: per input, round-robin over outputs with a non-empty VOQ
  /// and an available crosspoint credit; transfers at most one head flit.
  void fill_crosspoints(Cycle now, std::vector<VoqMemory>& voqs,
                        const Eligibility* eligible);

  /// Burst-stabilization bookkeeping (no-op unless `stab:1` and the
  /// crosspoints are deeper than one flit): unlock parked credits when a
  /// VOQ passes the threshold, reclaim them once the burst drains dry.
  void update_stabilization(const std::vector<VoqMemory>& voqs);

  [[nodiscard]] std::uint32_t ports() const { return ports_; }
  [[nodiscard]] const QdSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint32_t xp_occupancy(std::uint32_t input,
                                           std::uint32_t output) const;
  /// Flits of (input, vc) currently sitting in crosspoint buffers.
  [[nodiscard]] std::uint32_t vc_occupancy(std::uint32_t input,
                                           std::uint32_t vc) const;
  [[nodiscard]] std::uint64_t total_flits() const { return total_; }
  [[nodiscard]] const CreditManager& credits(std::uint32_t input) const;

  // Counters for metrics (cumulative; the measurement window is handled by
  // the collector diffing at warmup end).
  [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
  [[nodiscard]] std::uint64_t credit_stalls() const { return credit_stalls_; }
  [[nodiscard]] std::uint64_t burst_activations() const {
    return burst_activations_;
  }
  [[nodiscard]] std::uint64_t burst_deactivations() const {
    return burst_deactivations_;
  }

  void check_invariants() const;

  /// Checkpoint walk: crosspoint FIFOs, per-VC residency counts, credit
  /// managers, both round-robin pointer sets, burst flags, and counters.
  void snap(snapshot::Walker& w);

 private:
  [[nodiscard]] std::size_t xp_index(std::uint32_t input,
                                     std::uint32_t output) const {
    return static_cast<std::size_t>(input) * ports_ + output;
  }

  std::uint32_t ports_;
  QdSpec spec_;
  std::vector<std::deque<VoqMemory::Slot>> xp_;  ///< (input, output) FIFOs
  std::vector<std::uint32_t> xp_vc_count_;       ///< (input, vc) residency
  std::vector<CreditManager> credits_;           ///< per input, over outputs
  std::vector<std::uint32_t> input_ptr_;   ///< RR: next output per input
  std::vector<std::uint32_t> output_ptr_;  ///< RR: next input per output
  std::vector<std::uint8_t> burst_;        ///< (input, output) burst regime
  std::uint64_t total_ = 0;
  std::uint64_t transfers_ = 0;
  std::uint64_t credit_stalls_ = 0;
  std::uint64_t burst_activations_ = 0;
  std::uint64_t burst_deactivations_ = 0;
};

}  // namespace mmr
