// Queue-discipline configuration (`qd=` SimConfig override).  The MMR paper
// models per-VC input queueing (one FIFO per virtual channel, the link
// scheduler nominating top-L candidates); the related work studies two other
// disciplines for the same crossbar —
//
//   * `qd=voq`: per-input Virtual Output Queues.  Flits are sorted by
//     destination output at the input, eliminating head-of-line blocking.
//     Candidates are generated per non-empty VOQ with the link scheduler's
//     exact priority ordering, so the whole SwitchArbiter family (COA, WFA,
//     iSLIP, PIM, ...) runs unchanged on top.
//   * `qd=cicq`: combined input-crosspoint queueing (Gunther, PAPERS.md).
//     A small buffer per (input, output) crosspoint decouples the input
//     stage from the output stage; independent round-robin schedulers run
//     per input (VOQ -> crosspoint) and per output (crosspoint -> link).
//     Crosspoint space is credit-controlled; the burst-stabilization
//     protocol (`stab:1`) unlocks the full crosspoint depth when a VOQ
//     grows a burst, restoring the throughput that the base one-credit
//     allotment loses to the credit round-trip.
//
// The spec is pure data.  An empty `qd=` string (or "vc") means none of the
// VOQ/CICQ machinery is instantiated and results stay bit-identical to a
// build without the subsystem.
#pragma once

#include <cstdint>
#include <string>

namespace mmr {

/// Which input-queueing discipline the router runs.
enum class QueueDiscipline : std::uint8_t {
  kVc,    ///< per-VC input queues + link scheduler (the paper's model)
  kVoq,   ///< virtual output queues in front of the SwitchArbiter API
  kCicq,  ///< VOQs + per-crosspoint buffers with RR/RR scheduling
};

[[nodiscard]] const char* to_string(QueueDiscipline d);

struct QdSpec {
  QueueDiscipline discipline = QueueDiscipline::kVc;

  // --- cicq only ----------------------------------------------------------
  /// Burst-stabilization credit protocol: when a VOQ backs up past
  /// `burst_threshold`, the input is granted the crosspoint's full depth in
  /// credits instead of the base single credit, pipelining the credit
  /// round-trip that otherwise caps per-flow throughput at
  /// 1/(1 + round-trip) under bursty arrivals.
  bool stabilize = true;
  /// Per-crosspoint buffer depth, flits (`xp:`).
  std::uint32_t crosspoint_flits = 2;
  /// VOQ occupancy at which stabilization unlocks burst credits (`thresh:`).
  std::uint32_t burst_threshold = 4;

  /// Parses "vc", "voq", or "cicq[,key:value...]" with keys stab (0|1),
  /// xp, thresh.  Empty parses as "vc".  Throws std::invalid_argument
  /// (message prefixed "error:") on unknown or malformed tokens.
  [[nodiscard]] static QdSpec parse(const std::string& spec);

  /// Aborts with a readable message on nonsense combinations.
  void validate() const;
};

}  // namespace mmr
