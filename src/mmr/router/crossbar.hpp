// Multiplexed crossbar: as many ports as physical channels (the VCs are
// multiplexed onto them), reconfigured every scheduling cycle from the
// arbiter's matching.  Tracks the utilization and reconfiguration counts the
// evaluation reports (Figure 8).
#pragma once

#include <vector>

#include "mmr/arbiter/matching.hpp"
#include "mmr/sim/stats.hpp"
#include "mmr/sim/time.hpp"

namespace mmr {

namespace snapshot {
class Walker;
}

class Crossbar {
 public:
  explicit Crossbar(std::uint32_t ports);

  [[nodiscard]] std::uint32_t ports() const {
    return static_cast<std::uint32_t>(input_of_output_.size());
  }

  /// Applies one cycle's matching; counts utilization over the measurement
  /// window only when `measure` is set (warmup exclusion).
  void apply(const Matching& matching, bool measure);

  /// CICQ variant: the output stage picks an input per output independently
  /// (crosspoint buffers decouple the stages), so the configuration is not
  /// a one-to-one matching — the same input may feed several outputs in a
  /// cycle.  `input_of_output[out]` is the serving input or -1 for idle.
  void apply_outputs(const std::vector<std::int32_t>& input_of_output,
                     bool measure);

  /// Input currently connected to `output`, or -1.
  [[nodiscard]] std::int32_t input_of(std::uint32_t output) const;

  /// Fraction of output-port cycles that carried a flit (measured window).
  [[nodiscard]] double utilization() const { return utilization_.ratio(); }
  [[nodiscard]] std::uint64_t flits_switched() const {
    return utilization_.numerator();
  }
  /// Crosspoint configuration changes per cycle, averaged (measured window).
  [[nodiscard]] double mean_reconfigurations() const {
    return reconfigurations_.ratio();
  }
  /// Matching size per cycle, averaged (measured window).
  [[nodiscard]] double mean_matching_size() const {
    return matching_size_.mean();
  }

  /// Checkpoint walk.  The crosspoint configuration persists across cycles
  /// (reconfiguration counting diffs against it), so it is state, not
  /// scratch.
  void snap(snapshot::Walker& w);

 private:
  std::vector<std::int32_t> input_of_output_;
  RatioAccumulator utilization_;       ///< matched outputs / ports
  RatioAccumulator reconfigurations_;  ///< changed outputs / cycles
  StreamingStats matching_size_;
};

}  // namespace mmr
