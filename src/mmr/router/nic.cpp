#include "mmr/router/nic.hpp"

#include "mmr/sim/assert.hpp"
#include "mmr/snapshot/walker.hpp"

namespace mmr {

Nic::Nic(std::uint32_t vcs, std::uint32_t credits_per_vc, Cycle credit_latency)
    : queues_(vcs), credits_(vcs, credits_per_vc, credit_latency) {
  MMR_ASSERT(vcs > 0);
}

void Nic::deposit(std::uint32_t vc, const Flit& flit) {
  MMR_ASSERT(vc < vcs());
  if (queues_[vc].empty()) ++nonempty_;
  queues_[vc].push_back(flit);
  ++total_queued_;
}

std::optional<LinkTransfer> Nic::select_and_send(Cycle now) {
  credits_.tick(now);
  if (paused_ || nonempty_ == 0) return std::nullopt;
  const std::uint32_t n = vcs();
  for (std::uint32_t k = 0; k < n; ++k) {
    const std::uint32_t vc = (rr_next_ + k) % n;
    if (queues_[vc].empty() || !credits_.has_credit(vc)) continue;
    credits_.consume(vc);
    LinkTransfer transfer;
    transfer.flit = queues_[vc].front();
    transfer.vc = vc;
    queues_[vc].pop_front();
    if (queues_[vc].empty()) --nonempty_;
    ++total_sent_;
    // Demand-driven round-robin: resume after the connection just served.
    rr_next_ = (vc + 1) % n;
    return transfer;
  }
  return std::nullopt;
}

void Nic::move_queue(std::uint32_t from_vc, std::uint32_t to_vc) {
  MMR_ASSERT(from_vc < vcs());
  MMR_ASSERT(to_vc < vcs());
  if (from_vc == to_vc || queues_[from_vc].empty()) return;
  if (queues_[to_vc].empty()) ++nonempty_;
  for (const Flit& flit : queues_[from_vc]) queues_[to_vc].push_back(flit);
  queues_[from_vc].clear();
  --nonempty_;
}

std::size_t Nic::queued(std::uint32_t vc) const {
  MMR_ASSERT(vc < vcs());
  return queues_[vc].size();
}

void Nic::check_invariants() const {
  std::uint64_t counted = 0;
  std::uint32_t nonempty = 0;
  for (const auto& queue : queues_) {
    counted += queue.size();
    if (!queue.empty()) ++nonempty;
  }
  MMR_ASSERT(counted == total_queued_ - total_sent_);
  MMR_ASSERT(nonempty == nonempty_);
  credits_.check_invariants();
}

void Nic::snap(snapshot::Walker& w) {
  snapshot::walk_vector(w, queues_, [](snapshot::Walker& v,
                                       std::deque<Flit>& q) {
    snapshot::walk_deque(v, q, snap_flit);
  });
  credits_.snap(w);
  snapshot::value(w, rr_next_);
  snapshot::value(w, total_queued_);
  snapshot::value(w, total_sent_);
  snapshot::value(w, nonempty_);
  snapshot::value(w, paused_);
}

}  // namespace mmr
