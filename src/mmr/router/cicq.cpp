#include "mmr/router/cicq.hpp"

#include "mmr/sim/assert.hpp"
#include "mmr/snapshot/walker.hpp"
#include "mmr/trace/event.hpp"
#include "mmr/trace/tracer.hpp"

namespace mmr {

CicqFabric::CicqFabric(std::uint32_t ports, std::uint32_t vcs,
                       const QdSpec& spec, Cycle credit_latency)
    : ports_(ports),
      spec_(spec),
      xp_(static_cast<std::size_t>(ports) * ports),
      xp_vc_count_(static_cast<std::size_t>(ports) * vcs, 0),
      input_ptr_(ports, 0),
      output_ptr_(ports, 0),
      burst_(static_cast<std::size_t>(ports) * ports, 0) {
  MMR_ASSERT(ports_ > 0);
  MMR_ASSERT(spec_.discipline == QueueDiscipline::kCicq);
  spec_.validate();
  credits_.reserve(ports_);
  for (std::uint32_t input = 0; input < ports_; ++input) {
    // One credit pool per input, one "VC" per output, full crosspoint depth.
    credits_.emplace_back(ports_, spec_.crosspoint_flits, credit_latency);
    // Base regime: park everything beyond the single base credit.  Burst
    // stabilization (stab:1) hands the parked credits back per crosspoint
    // when its VOQ backs up.
    for (std::uint32_t output = 0; output < ports_; ++output) {
      credits_.back().reclaim(output, spec_.crosspoint_flits - 1);
    }
  }
}

void CicqFabric::tick(Cycle now) {
  for (CreditManager& credits : credits_) credits.tick(now);
}

void CicqFabric::drain_outputs(Cycle now, std::vector<Drained>& out,
                               std::vector<std::int32_t>& input_of_output) {
  input_of_output.assign(ports_, -1);
  const auto vcs = static_cast<std::uint32_t>(xp_vc_count_.size() / ports_);
  for (std::uint32_t output = 0; output < ports_; ++output) {
    for (std::uint32_t k = 0; k < ports_; ++k) {
      const std::uint32_t input = (output_ptr_[output] + k) % ports_;
      std::deque<VoqMemory::Slot>& fifo = xp_[xp_index(input, output)];
      if (fifo.empty()) continue;
      VoqMemory::Slot slot = fifo.front();
      fifo.pop_front();
      std::uint32_t& residency =
          xp_vc_count_[static_cast<std::size_t>(input) * vcs + slot.vc];
      MMR_ASSERT(residency > 0);
      --residency;
      --total_;
      credits_[input].release(output, now);
      input_of_output[output] = static_cast<std::int32_t>(input);
      out.push_back({input, output, slot.vc, slot.flit});
      MMR_TRACE_EVENT(trace::xp_grant_event(now, input, output, slot.vc,
                                            slot.flit.connection,
                                            slot.flit.seq, fifo.size()));
      output_ptr_[output] = (input + 1) % ports_;
      break;
    }
  }
}

void CicqFabric::fill_crosspoints(Cycle now, std::vector<VoqMemory>& voqs,
                                  const Eligibility* eligible) {
  MMR_ASSERT(voqs.size() == ports_);
  const std::uint32_t vcs = static_cast<std::uint32_t>(
      xp_vc_count_.size() / ports_);
  for (std::uint32_t input = 0; input < ports_; ++input) {
    VoqMemory& voq = voqs[input];
    bool had_work = false;
    bool sent = false;
    for (std::uint32_t k = 0; k < ports_; ++k) {
      const std::uint32_t output = (input_ptr_[input] + k) % ports_;
      if (voq.empty(output)) continue;
      if (eligible != nullptr && !(*eligible)(input, voq.head(output).vc))
        continue;
      had_work = true;
      if (!credits_[input].has_credit(output)) continue;
      credits_[input].consume(output);
      VoqMemory::Slot slot = voq.pop(output);
      std::deque<VoqMemory::Slot>& fifo = xp_[xp_index(input, output)];
      MMR_ASSERT_MSG(fifo.size() < spec_.crosspoint_flits,
                     "crosspoint overflow: credit protocol was violated");
      fifo.push_back(slot);
      ++xp_vc_count_[static_cast<std::size_t>(input) * vcs + slot.vc];
      ++total_;
      ++transfers_;
      MMR_TRACE_EVENT(trace::xp_enqueue_event(now, input, output, slot.vc,
                                              slot.flit.connection,
                                              slot.flit.seq, fifo.size()));
      input_ptr_[input] = (output + 1) % ports_;
      sent = true;
      break;
    }
    if (had_work && !sent) ++credit_stalls_;
  }
}

void CicqFabric::update_stabilization(const std::vector<VoqMemory>& voqs) {
  if (!spec_.stabilize || spec_.crosspoint_flits <= 1) return;
  const std::uint32_t parked = spec_.crosspoint_flits - 1;
  for (std::uint32_t input = 0; input < ports_; ++input) {
    for (std::uint32_t output = 0; output < ports_; ++output) {
      std::uint8_t& burst = burst_[xp_index(input, output)];
      if (burst == 0) {
        if (voqs[input].occupancy(output) >= spec_.burst_threshold) {
          credits_[input].restore(output, parked);
          burst = 1;
          ++burst_activations_;
        }
      } else if (voqs[input].empty(output) &&
                 xp_[xp_index(input, output)].empty() &&
                 credits_[input].credits(output) == spec_.crosspoint_flits) {
        // The burst fully drained and every credit made it home: park the
        // extra depth again so idle crosspoints return to the base regime.
        credits_[input].reclaim(output, parked);
        burst = 0;
        ++burst_deactivations_;
      }
    }
  }
}

std::uint32_t CicqFabric::xp_occupancy(std::uint32_t input,
                                       std::uint32_t output) const {
  MMR_ASSERT(input < ports_ && output < ports_);
  return static_cast<std::uint32_t>(xp_[xp_index(input, output)].size());
}

std::uint32_t CicqFabric::vc_occupancy(std::uint32_t input,
                                       std::uint32_t vc) const {
  const std::uint32_t vcs =
      static_cast<std::uint32_t>(xp_vc_count_.size() / ports_);
  MMR_ASSERT(input < ports_ && vc < vcs);
  return xp_vc_count_[static_cast<std::size_t>(input) * vcs + vc];
}

const CreditManager& CicqFabric::credits(std::uint32_t input) const {
  MMR_ASSERT(input < ports_);
  return credits_[input];
}

void CicqFabric::check_invariants() const {
  const std::uint32_t vcs =
      static_cast<std::uint32_t>(xp_vc_count_.size() / ports_);
  std::uint64_t counted = 0;
  std::vector<std::uint32_t> per_vc(xp_vc_count_.size(), 0);
  for (std::uint32_t input = 0; input < ports_; ++input) {
    credits_[input].check_invariants();
    for (std::uint32_t output = 0; output < ports_; ++output) {
      const std::deque<VoqMemory::Slot>& fifo = xp_[xp_index(input, output)];
      MMR_ASSERT(fifo.size() <= spec_.crosspoint_flits);
      counted += fifo.size();
      for (const VoqMemory::Slot& slot : fifo) {
        ++per_vc[static_cast<std::size_t>(input) * vcs + slot.vc];
      }
      // Credit conservation per crosspoint: available + travelling back +
      // occupying a buffer slot always equals the active allotment.
      const std::uint32_t allotment =
          burst_[xp_index(input, output)] != 0 ? spec_.crosspoint_flits : 1;
      MMR_ASSERT(credits_[input].credits(output) +
                     credits_[input].pending_for(output) +
                     static_cast<std::uint32_t>(fifo.size()) ==
                 allotment);
    }
  }
  for (std::size_t i = 0; i < per_vc.size(); ++i) {
    MMR_ASSERT(per_vc[i] == xp_vc_count_[i]);
  }
  MMR_ASSERT(counted == total_);
}

void CicqFabric::snap(snapshot::Walker& w) {
  snapshot::walk_vector(w, xp_, [](snapshot::Walker& v,
                                   std::deque<VoqMemory::Slot>& q) {
    snapshot::walk_deque(v, q, [](snapshot::Walker& u,
                                  VoqMemory::Slot& slot) {
      snap_flit(u, slot.flit);
      snapshot::value(u, slot.arrived);
      snapshot::value(u, slot.vc);
    });
  });
  snapshot::walk_vector_pod(w, xp_vc_count_);
  for (CreditManager& credits : credits_) credits.snap(w);
  snapshot::walk_vector_pod(w, input_ptr_);
  snapshot::walk_vector_pod(w, output_ptr_);
  snapshot::walk_vector_pod(w, burst_);
  snapshot::value(w, total_);
  snapshot::value(w, transfers_);
  snapshot::value(w, credit_stalls_);
  snapshot::value(w, burst_activations_);
  snapshot::value(w, burst_deactivations_);
}

}  // namespace mmr
