#include "mmr/router/qd_spec.hpp"

#include <charconv>
#include <stdexcept>
#include <string_view>

#include "mmr/sim/assert.hpp"

namespace mmr {

const char* to_string(QueueDiscipline d) {
  switch (d) {
    case QueueDiscipline::kVc: return "vc";
    case QueueDiscipline::kVoq: return "voq";
    case QueueDiscipline::kCicq: return "cicq";
  }
  return "?";
}

namespace {

std::uint64_t parse_u64(std::string_view v, const std::string& key) {
  std::uint64_t x = 0;
  const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), x);
  if (ec != std::errc{} || p != v.data() + v.size())
    throw std::invalid_argument("qd spec: bad integer value for " +
                                key + ": " + std::string(v));
  return x;
}

}  // namespace

QdSpec QdSpec::parse(const std::string& spec) {
  QdSpec out;
  if (spec.empty()) return out;
  std::string_view rest(spec);

  const auto next_token = [&rest]() {
    const auto comma = rest.find(',');
    std::string_view token = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    return token;
  };

  const std::string_view mode = next_token();
  if (mode == "vc") {
    out.discipline = QueueDiscipline::kVc;
  } else if (mode == "voq") {
    out.discipline = QueueDiscipline::kVoq;
  } else if (mode == "cicq") {
    out.discipline = QueueDiscipline::kCicq;
  } else {
    throw std::invalid_argument(
        "qd spec must start with vc|voq|cicq, got: " +
        std::string(mode));
  }

  while (!rest.empty()) {
    const std::string_view token = next_token();
    if (token.empty()) continue;
    const auto colon = token.find(':');
    if (colon == std::string_view::npos)
      throw std::invalid_argument("qd spec token must be key:value: " +
                                  std::string(token));
    const std::string key(token.substr(0, colon));
    const std::string_view value = token.substr(colon + 1);
    if (key == "stab") {
      out.stabilize = parse_u64(value, key) != 0;
    } else if (key == "xp") {
      out.crosspoint_flits = static_cast<std::uint32_t>(parse_u64(value, key));
    } else if (key == "thresh") {
      out.burst_threshold = static_cast<std::uint32_t>(parse_u64(value, key));
    } else {
      throw std::invalid_argument("qd spec: unknown key '" + key +
                                  "'; valid keys: stab, xp, thresh");
    }
    if (out.discipline != QueueDiscipline::kCicq)
      throw std::invalid_argument(
          "qd spec: key '" + key +
          "' only applies to qd=cicq (crosspoint buffering)");
  }
  out.validate();
  return out;
}

void QdSpec::validate() const {
  if (discipline != QueueDiscipline::kCicq) return;
  MMR_ASSERT_MSG(crosspoint_flits >= 1,
                 "crosspoint buffer must hold >= 1 flit");
  MMR_ASSERT_MSG(burst_threshold >= 1, "burst threshold must be >= 1");
}

}  // namespace mmr
