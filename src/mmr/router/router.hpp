// The Multimedia Router (Figure 1): per physical input link a Virtual
// Channel Memory plus Link Scheduler, a multiplexed crossbar with as many
// ports as physical channels, and a pluggable Switch Scheduler.  One call to
// step() performs one scheduling cycle: candidate selection on every input
// link, switch arbitration, and synchronous flit forwarding through the
// crossbar.
//
// The queue-discipline axis (`qd=`, mmr/router/qd_spec.hpp) swaps the input
// buffering and scheduling stage while keeping the same external contract
// (accept / step / Departure / credit accounting):
//   * kVc (default) — per-VC FIFOs + link scheduler + switch arbiter;
//   * kVoq — per-input virtual output queues feeding the same arbiter;
//   * kCicq — VOQs + per-crosspoint buffers with independent RR input and
//     output schedulers (no central arbiter; see mmr/router/cicq.hpp).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mmr/arbiter/factory.hpp"
#include "mmr/qos/connection.hpp"
#include "mmr/qos/rounds.hpp"
#include "mmr/router/cicq.hpp"
#include "mmr/router/crossbar.hpp"
#include "mmr/router/link_scheduler.hpp"
#include "mmr/router/qd_spec.hpp"
#include "mmr/router/vcm.hpp"
#include "mmr/router/voq.hpp"
#include "mmr/sim/config.hpp"

namespace mmr {

namespace snapshot {
class Walker;
}

class MmrRouter {
 public:
  MmrRouter(const SimConfig& config, const ConnectionTable& table, Rng rng);

  /// A flit leaving on an output link this cycle.
  struct Departure {
    std::uint32_t input = 0;
    std::uint32_t output = 0;
    std::uint32_t vc = 0;
    Flit flit;
  };

  [[nodiscard]] std::uint32_t ports() const { return ports_; }
  [[nodiscard]] QueueDiscipline queue_discipline() const {
    return qd_.discipline;
  }

  [[nodiscard]] bool can_accept(std::uint32_t input, std::uint32_t vc) const;
  void accept(std::uint32_t input, std::uint32_t vc, const Flit& flit,
              Cycle now);

  /// Gate deciding whether (input, vc) may compete for the crossbar this
  /// cycle.  Multi-router networks install one to enforce downstream credit
  /// availability; unset = every occupied VC is eligible.
  using EligibilityFn =
      std::function<bool(std::uint32_t input, std::uint32_t vc)>;
  void set_eligibility(EligibilityFn eligibility) {
    eligibility_ = std::move(eligibility);
  }

  /// One scheduling cycle.  Departures leave their output links during this
  /// cycle; `measure` gates crossbar statistics (warmup exclusion).
  void step(Cycle now, bool measure, std::vector<Departure>& departures);

  /// Fault recovery: binds (input, vc) to a re-admitted connection's output
  /// port and QoS constants (the runtime equivalent of the setup-time
  /// ConnectionTable walk in the constructor).
  void install_vc(std::uint32_t input, std::uint32_t vc, std::uint32_t output,
                  QosParams qos);

  /// Fault teardown: discards every flit buffered on (input, vc).  Returns
  /// how many were discarded; the caller settles the upstream credits.
  /// Only supported under the per-VC discipline (the network layer, its one
  /// caller, rejects qd=voq/cicq at parse).
  std::uint32_t drain_vc(std::uint32_t input, std::uint32_t vc);

  [[nodiscard]] const Crossbar& crossbar() const { return crossbar_; }
  /// Per-VC buffer state; only valid under the per-VC discipline.
  [[nodiscard]] const VirtualChannelMemory& vcm(std::uint32_t input) const;
  /// VOQ state; only valid under qd=voq / qd=cicq.
  [[nodiscard]] const VoqMemory& voq(std::uint32_t input) const;
  /// Crosspoint fabric; non-null only under qd=cicq.
  [[nodiscard]] const CicqFabric* cicq() const { return cicq_.get(); }
  /// Flits of (input, vc) currently inside the router, whatever the
  /// discipline buffers them in (VC FIFO, VOQs, crosspoints).  This is the
  /// quantity the NIC credit loop and the conservation audit balance.
  [[nodiscard]] std::uint32_t vc_occupancy(std::uint32_t input,
                                           std::uint32_t vc) const;
  [[nodiscard]] const SwitchArbiter& arbiter() const { return *arbiter_; }
  [[nodiscard]] std::uint64_t flits_accepted() const { return accepted_; }
  [[nodiscard]] std::uint64_t flits_departed() const { return departed_; }
  /// Flits discarded by fault teardown (drain_vc).
  [[nodiscard]] std::uint64_t flits_drained() const { return drained_; }
  /// Flits currently buffered inside the router.
  [[nodiscard]] std::uint64_t flits_buffered() const {
    return accepted_ - departed_ - drained_;
  }

  void check_invariants() const;

  /// Checkpoint walk: buffers (VCMs / VOQs / crosspoints per discipline),
  /// schedulers, arbiter internals, crossbar, flit counters.
  void snap(snapshot::Walker& w);

 private:
  void step_vc(Cycle now, bool measure, std::vector<Departure>& departures);
  void step_voq(Cycle now, bool measure, std::vector<Departure>& departures);
  void step_cicq(Cycle now, bool measure, std::vector<Departure>& departures);

  std::uint32_t ports_;
  QdSpec qd_;
  EligibilityFn eligibility_;
  std::vector<VirtualChannelMemory> vcms_;      ///< kVc only
  std::vector<LinkScheduler> link_schedulers_;  ///< kVc only
  std::vector<VoqMemory> voqs_;                 ///< kVoq / kCicq
  std::vector<VoqScheduler> voq_schedulers_;    ///< kVoq only
  /// kVoq / kCicq: VC -> output routing used at accept() (the per-VC
  /// disciplines carry it inside their link schedulers instead).
  std::vector<std::vector<std::uint32_t>> voq_output_of_vc_;
  std::unique_ptr<CicqFabric> cicq_;            ///< kCicq only
  std::unique_ptr<SwitchArbiter> arbiter_;
  Crossbar crossbar_;
  CandidateSet candidates_;
  Matching matching_;  ///< reused across cycles (allocation-free steady state)
  std::vector<CicqFabric::Drained> drained_scratch_;
  std::vector<std::int32_t> xp_pick_scratch_;
  std::uint64_t accepted_ = 0;
  std::uint64_t departed_ = 0;
  std::uint64_t drained_ = 0;
};

}  // namespace mmr
