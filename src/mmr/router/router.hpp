// The Multimedia Router (Figure 1): per physical input link a Virtual
// Channel Memory plus Link Scheduler, a multiplexed crossbar with as many
// ports as physical channels, and a pluggable Switch Scheduler.  One call to
// step() performs one scheduling cycle: candidate selection on every input
// link, switch arbitration, and synchronous flit forwarding through the
// crossbar.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mmr/arbiter/factory.hpp"
#include "mmr/qos/connection.hpp"
#include "mmr/qos/rounds.hpp"
#include "mmr/router/crossbar.hpp"
#include "mmr/router/link_scheduler.hpp"
#include "mmr/router/vcm.hpp"
#include "mmr/sim/config.hpp"

namespace mmr {

namespace snapshot {
class Walker;
}

class MmrRouter {
 public:
  MmrRouter(const SimConfig& config, const ConnectionTable& table, Rng rng);

  /// A flit leaving on an output link this cycle.
  struct Departure {
    std::uint32_t input = 0;
    std::uint32_t output = 0;
    std::uint32_t vc = 0;
    Flit flit;
  };

  [[nodiscard]] std::uint32_t ports() const { return ports_; }

  [[nodiscard]] bool can_accept(std::uint32_t input, std::uint32_t vc) const;
  void accept(std::uint32_t input, std::uint32_t vc, const Flit& flit,
              Cycle now);

  /// Gate deciding whether (input, vc) may compete for the crossbar this
  /// cycle.  Multi-router networks install one to enforce downstream credit
  /// availability; unset = every occupied VC is eligible.
  using EligibilityFn =
      std::function<bool(std::uint32_t input, std::uint32_t vc)>;
  void set_eligibility(EligibilityFn eligibility) {
    eligibility_ = std::move(eligibility);
  }

  /// One scheduling cycle.  Departures leave their output links during this
  /// cycle; `measure` gates crossbar statistics (warmup exclusion).
  void step(Cycle now, bool measure, std::vector<Departure>& departures);

  /// Fault recovery: binds (input, vc) to a re-admitted connection's output
  /// port and QoS constants (the runtime equivalent of the setup-time
  /// ConnectionTable walk in the constructor).
  void install_vc(std::uint32_t input, std::uint32_t vc, std::uint32_t output,
                  QosParams qos);

  /// Fault teardown: discards every flit buffered on (input, vc).  Returns
  /// how many were discarded; the caller settles the upstream credits.
  std::uint32_t drain_vc(std::uint32_t input, std::uint32_t vc);

  [[nodiscard]] const Crossbar& crossbar() const { return crossbar_; }
  [[nodiscard]] const VirtualChannelMemory& vcm(std::uint32_t input) const;
  [[nodiscard]] const SwitchArbiter& arbiter() const { return *arbiter_; }
  [[nodiscard]] std::uint64_t flits_accepted() const { return accepted_; }
  [[nodiscard]] std::uint64_t flits_departed() const { return departed_; }
  /// Flits discarded by fault teardown (drain_vc).
  [[nodiscard]] std::uint64_t flits_drained() const { return drained_; }
  /// Flits currently buffered inside the router.
  [[nodiscard]] std::uint64_t flits_buffered() const {
    return accepted_ - departed_ - drained_;
  }

  void check_invariants() const;

  /// Checkpoint walk: VCMs, schedulers, arbiter internals, crossbar, flit
  /// counters.
  void snap(snapshot::Walker& w);

 private:
  std::uint32_t ports_;
  EligibilityFn eligibility_;
  std::vector<VirtualChannelMemory> vcms_;
  std::vector<LinkScheduler> link_schedulers_;
  std::unique_ptr<SwitchArbiter> arbiter_;
  Crossbar crossbar_;
  CandidateSet candidates_;
  Matching matching_;  ///< reused across cycles (allocation-free steady state)
  std::uint64_t accepted_ = 0;
  std::uint64_t departed_ = 0;
  std::uint64_t drained_ = 0;
};

}  // namespace mmr
