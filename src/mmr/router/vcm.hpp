// Virtual Channel Memory: the MMR's per-input-link buffer pool (Figure 2).
// One small FIFO per virtual channel, physically organised as interleaved
// RAM banks behind an address generator.  The interleave is functionally
// transparent (the address generator guarantees conflict-free access for
// one enqueue + one dequeue per cycle); we model the per-bank occupancy for
// inspection but storage behaves as per-VC FIFOs.
#pragma once

#include <deque>
#include <vector>

#include "mmr/sim/time.hpp"
#include "mmr/traffic/flit.hpp"

namespace mmr {

namespace snapshot {
class Walker;
}

class VirtualChannelMemory {
 public:
  VirtualChannelMemory(std::uint32_t vcs, std::uint32_t capacity_per_vc,
                       std::uint32_t banks = 4);

  [[nodiscard]] std::uint32_t vcs() const {
    return static_cast<std::uint32_t>(queues_.size());
  }
  [[nodiscard]] std::uint32_t capacity_per_vc() const { return capacity_; }

  [[nodiscard]] bool can_accept(std::uint32_t vc) const;
  void push(std::uint32_t vc, const Flit& flit, Cycle now);

  [[nodiscard]] bool empty(std::uint32_t vc) const;
  [[nodiscard]] std::uint32_t occupancy(std::uint32_t vc) const;
  [[nodiscard]] const Flit& head(std::uint32_t vc) const;
  /// Cycle the current head flit entered this memory (its queuing-delay
  /// epoch for priority biasing).
  [[nodiscard]] Cycle head_arrival(std::uint32_t vc) const;

  Flit pop(std::uint32_t vc);

  /// VCs currently holding at least one flit (unordered; O(1) maintenance).
  [[nodiscard]] const std::vector<std::uint32_t>& occupied_vcs() const {
    return occupied_;
  }
  [[nodiscard]] std::uint64_t total_flits() const { return total_; }

  /// Words (flit slots) currently used per RAM bank; banks are assigned
  /// round-robin per (vc, slot) as the interleaved address generator would.
  [[nodiscard]] const std::vector<std::uint32_t>& bank_occupancy() const {
    return bank_used_;
  }

  void check_invariants() const;

  /// Checkpoint walk: per-VC FIFOs (flits + arrival stamps + bank tags),
  /// bank occupancy, the occupied-VC index, and counters.
  void snap(snapshot::Walker& w);

 private:
  struct Slot {
    Flit flit;
    Cycle arrived;
    std::uint32_t bank;
  };

  std::uint32_t capacity_;
  std::vector<std::deque<Slot>> queues_;
  std::vector<std::uint64_t> pushes_per_vc_;  ///< drives bank interleave
  std::vector<std::uint32_t> bank_used_;
  std::vector<std::uint32_t> occupied_;
  std::vector<std::int32_t> occupied_pos_;  ///< vc -> index in occupied_
  std::uint64_t total_ = 0;
};

}  // namespace mmr
