#include "mmr/router/voq.hpp"

#include <algorithm>

#include "mmr/sim/assert.hpp"
#include "mmr/snapshot/walker.hpp"
#include "mmr/trace/event.hpp"
#include "mmr/trace/tracer.hpp"

namespace mmr {

VoqMemory::VoqMemory(std::uint32_t outputs, std::uint32_t vcs,
                     std::uint32_t capacity_per_vc)
    : capacity_(capacity_per_vc),
      queues_(outputs),
      vc_count_(vcs, 0),
      occupied_pos_(outputs, -1) {
  MMR_ASSERT(outputs > 0);
  MMR_ASSERT(vcs > 0);
  MMR_ASSERT(capacity_per_vc > 0);
}

bool VoqMemory::can_accept(std::uint32_t vc) const {
  MMR_ASSERT(vc < vcs());
  return vc_count_[vc] < capacity_;
}

void VoqMemory::push(std::uint32_t output, std::uint32_t vc, const Flit& flit,
                     Cycle now) {
  MMR_ASSERT(output < outputs());
  MMR_ASSERT(vc < vcs());
  MMR_ASSERT_MSG(can_accept(vc),
                 "VOQ overflow: credit flow control was violated");
  if (queues_[output].empty()) {
    occupied_pos_[output] = static_cast<std::int32_t>(occupied_.size());
    occupied_.push_back(output);
  }
  queues_[output].push_back({flit, now, vc});
  ++vc_count_[vc];
  ++total_;
}

bool VoqMemory::empty(std::uint32_t output) const {
  MMR_ASSERT(output < outputs());
  return queues_[output].empty();
}

std::uint32_t VoqMemory::occupancy(std::uint32_t output) const {
  MMR_ASSERT(output < outputs());
  return static_cast<std::uint32_t>(queues_[output].size());
}

const VoqMemory::Slot& VoqMemory::head(std::uint32_t output) const {
  MMR_ASSERT(output < outputs());
  MMR_ASSERT(!queues_[output].empty());
  return queues_[output].front();
}

VoqMemory::Slot VoqMemory::pop(std::uint32_t output) {
  MMR_ASSERT(output < outputs());
  MMR_ASSERT(!queues_[output].empty());
  Slot slot = queues_[output].front();
  queues_[output].pop_front();
  MMR_ASSERT(vc_count_[slot.vc] > 0);
  --vc_count_[slot.vc];
  --total_;
  if (queues_[output].empty()) {
    const auto pos = static_cast<std::size_t>(occupied_pos_[output]);
    const std::uint32_t moved = occupied_.back();
    occupied_[pos] = moved;
    occupied_pos_[moved] = static_cast<std::int32_t>(pos);
    occupied_.pop_back();
    occupied_pos_[output] = -1;
  }
  return slot;
}

std::uint32_t VoqMemory::vc_occupancy(std::uint32_t vc) const {
  MMR_ASSERT(vc < vcs());
  return vc_count_[vc];
}

void VoqMemory::check_invariants() const {
  std::uint64_t counted = 0;
  std::vector<std::uint32_t> per_vc(vc_count_.size(), 0);
  for (std::uint32_t output = 0; output < outputs(); ++output) {
    counted += queues_[output].size();
    for (const Slot& slot : queues_[output]) ++per_vc[slot.vc];
    const bool listed = occupied_pos_[output] != -1;
    MMR_ASSERT(listed == !queues_[output].empty());
    if (listed) {
      const auto pos = static_cast<std::size_t>(occupied_pos_[output]);
      MMR_ASSERT(pos < occupied_.size());
      MMR_ASSERT(occupied_[pos] == output);
    }
  }
  for (std::uint32_t vc = 0; vc < vcs(); ++vc) {
    MMR_ASSERT(per_vc[vc] == vc_count_[vc]);
    MMR_ASSERT(vc_count_[vc] <= capacity_);
  }
  MMR_ASSERT(counted == total_);
  MMR_ASSERT(occupied_.size() <= outputs());
}

void VoqMemory::snap(snapshot::Walker& w) {
  snapshot::walk_vector(w, queues_, [](snapshot::Walker& v,
                                       std::deque<Slot>& q) {
    snapshot::walk_deque(v, q, [](snapshot::Walker& u, Slot& slot) {
      snap_flit(u, slot.flit);
      snapshot::value(u, slot.arrived);
      snapshot::value(u, slot.vc);
    });
  });
  snapshot::walk_vector_pod(w, vc_count_);
  snapshot::walk_vector_pod(w, occupied_);
  snapshot::walk_vector_pod(w, occupied_pos_);
  snapshot::value(w, total_);
}

VoqScheduler::VoqScheduler(std::uint32_t input_port, std::uint32_t levels,
                           PriorityFunction priority,
                           std::uint32_t phits_per_flit,
                           std::vector<QosParams> qos_of_vc)
    : input_port_(input_port),
      levels_(levels),
      priority_(priority),
      phits_per_flit_(phits_per_flit),
      qos_of_vc_(std::move(qos_of_vc)) {
  MMR_ASSERT(levels_ >= 1);
  MMR_ASSERT(phits_per_flit_ >= 1);
}

void VoqScheduler::set_vc(std::uint32_t vc, QosParams qos) {
  MMR_ASSERT(vc < qos_of_vc_.size());
  qos_of_vc_[vc] = qos;
}

Priority VoqScheduler::head_priority(const VoqMemory& voq,
                                     std::uint32_t output, Cycle now) const {
  const VoqMemory::Slot& slot = voq.head(output);
  MMR_ASSERT(slot.vc < qos_of_vc_.size());
  MMR_ASSERT(slot.arrived <= now);
  const std::uint64_t age_router_cycles =
      (now - slot.arrived) * phits_per_flit_;
  const QosParams& qos =
      slot.flit.demoted ? demoted_qos_ : qos_of_vc_[slot.vc];
  return priority_(qos, age_router_cycles);
}

void VoqScheduler::select(const VoqMemory& voq, Cycle now, CandidateSet& out,
                          const Eligibility* eligible) const {
  struct Entry {
    Priority priority;
    Cycle arrived;
    std::uint32_t vc;
    std::uint32_t output;
  };
  // Top-L selection with the link scheduler's comparator: the head flit's
  // VC breaks ties exactly as it would competing from a per-VC queue.
  Entry best[64];
  MMR_ASSERT_MSG(levels_ <= 64, "candidate levels beyond selection buffer");
  std::uint32_t filled = 0;

  auto better = [](const Entry& a, const Entry& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.arrived != b.arrived) return a.arrived < b.arrived;
    return a.vc < b.vc;
  };

  for (std::uint32_t output : voq.occupied_outputs()) {
    const VoqMemory::Slot& slot = voq.head(output);
    if (eligible != nullptr && !(*eligible)(slot.vc)) continue;
    Entry entry{head_priority(voq, output, now), slot.arrived, slot.vc,
                output};
    if (filled == levels_ && !better(entry, best[filled - 1])) continue;
    std::uint32_t pos = std::min(filled, levels_ - 1);
    if (filled < levels_) ++filled;
    while (pos > 0 && better(entry, best[pos - 1])) {
      best[pos] = best[pos - 1];
      --pos;
    }
    best[pos] = entry;
  }

  for (std::uint32_t level = 0; level < filled; ++level) {
    Candidate candidate;
    candidate.input = static_cast<std::uint16_t>(input_port_);
    candidate.output = static_cast<std::uint16_t>(best[level].output);
    candidate.level = static_cast<std::uint8_t>(level);
    candidate.vc = best[level].vc;
    candidate.priority = best[level].priority;
    out.add(candidate);
    MMR_TRACE_EVENT(trace::candidate_event(now, candidate.input,
                                           candidate.output, candidate.vc,
                                           candidate.level,
                                           candidate.priority));
  }
}

void VoqScheduler::snap(snapshot::Walker& w) {
  snapshot::walk_vector(w, qos_of_vc_, [](snapshot::Walker& v, QosParams& q) {
    snapshot::value(v, q.slots_per_round);
    snapshot::value(v, q.iat_router_cycles);
  });
  snapshot::value(w, demoted_qos_.slots_per_round);
  snapshot::value(w, demoted_qos_.iat_router_cycles);
}

}  // namespace mmr
