// Network Interface Card model (Figure 4).  Traffic sources deposit flits
// into per-connection buffers considered infinite (host memory backs them);
// the physical link controller forwards flits of connections that have both
// a flit and a credit, in demand-driven round-robin order, one flit per
// cycle.  The paper shows this simple policy suffices because the router's
// scheduler, small buffers and flow control make the NIC adapt to the
// router's needs.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "mmr/router/credits.hpp"
#include "mmr/router/link.hpp"
#include "mmr/sim/time.hpp"
#include "mmr/traffic/flit.hpp"

namespace mmr {

namespace snapshot {
class Walker;
}

class Nic {
 public:
  /// `vcs` = connections attached to this NIC's link (VC-indexed).
  Nic(std::uint32_t vcs, std::uint32_t credits_per_vc, Cycle credit_latency);

  [[nodiscard]] std::uint32_t vcs() const {
    return static_cast<std::uint32_t>(queues_.size());
  }

  /// Source side: deposits a generated flit (infinite buffer).
  void deposit(std::uint32_t vc, const Flit& flit);

  /// Router side: returns a credit (usable after the credit latency).
  void return_credit(std::uint32_t vc, Cycle now) {
    credits_.release(vc, now);
  }

  /// Link controller: applies due credits, then picks the next connection
  /// in demand-driven round-robin order with a flit and a credit.  Returns
  /// the flit to put on the link, or nothing if no connection is eligible.
  [[nodiscard]] std::optional<LinkTransfer> select_and_send(Cycle now);

  /// Xon/Xoff pause from the shared-buffer MMU (flow=shared only).  While
  /// paused the NIC stalls — flits stay queued in the infinite source
  /// buffers, nothing is ever dropped here — which is the lossless half of
  /// the pause contract.  Credits still tick while paused.
  void set_paused(bool paused) { paused_ = paused; }
  [[nodiscard]] bool paused() const { return paused_; }

  /// Fault recovery: moves every queued flit of `from_vc` to the back of
  /// `to_vc`'s queue (the connection was re-admitted on a different VC of a
  /// rerouted path; flits still in host memory follow it).
  void move_queue(std::uint32_t from_vc, std::uint32_t to_vc);

  [[nodiscard]] std::size_t queued(std::uint32_t vc) const;
  [[nodiscard]] std::uint64_t total_queued() const { return total_queued_; }
  [[nodiscard]] std::uint64_t total_sent() const { return total_sent_; }
  [[nodiscard]] const CreditManager& credits() const { return credits_; }

  void check_invariants() const;

  /// Checkpoint walk: per-VC queues (flit payloads included), credit state,
  /// round-robin cursor, counters, pause flag.
  void snap(snapshot::Walker& w);

 private:
  std::vector<std::deque<Flit>> queues_;
  CreditManager credits_;
  std::uint32_t rr_next_ = 0;  ///< round-robin cursor
  std::uint64_t total_queued_ = 0;
  std::uint64_t total_sent_ = 0;
  std::uint32_t nonempty_ = 0;
  bool paused_ = false;  ///< Xoff asserted by the shared-buffer MMU
};

}  // namespace mmr
