// Link scheduling / candidate selection (Sections 3.1 and 4): per input
// port, pick the L virtual channels whose head flits carry the highest
// biased priorities.  Level 0 is the top-priority candidate.  Queue ages are
// measured in router (phit) cycles since the head flit entered the VCM, as
// SIABP's hardware counters do.
#pragma once

#include <functional>
#include <vector>

#include "mmr/arbiter/candidate.hpp"
#include "mmr/qos/priority.hpp"
#include "mmr/router/vcm.hpp"

namespace mmr {

class LinkScheduler {
 public:
  /// `output_of_vc[vc]` — the output port each VC's connection was routed
  /// to at setup; `qos_of_vc[vc]` — the priority-function constants.
  LinkScheduler(std::uint32_t input_port, std::uint32_t levels,
                PriorityFunction priority, std::uint32_t phits_per_flit,
                std::vector<std::uint32_t> output_of_vc,
                std::vector<QosParams> qos_of_vc);

  /// Filter deciding whether a VC may compete this cycle (multi-router
  /// networks gate on downstream buffer credit; nullptr = all eligible).
  using Eligibility = std::function<bool(std::uint32_t vc)>;

  /// Appends this port's candidates (up to `levels`) to `out`.
  void select(const VirtualChannelMemory& vcm, Cycle now, CandidateSet& out,
              const Eligibility* eligible = nullptr) const;

  /// The biased priority the head flit of `vc` has at `now` (test hook).
  [[nodiscard]] Priority head_priority(const VirtualChannelMemory& vcm,
                                       std::uint32_t vc, Cycle now) const;

  /// Rebinds `vc` to a new connection (fault recovery: a torn-down
  /// connection is re-admitted on a fresh VC of its rerouted path).
  void set_vc(std::uint32_t vc, std::uint32_t output, QosParams qos);

  /// Priority constants applied to head flits carrying the `demoted` flag
  /// (overload policing): the claim of a minimal best-effort reservation.
  void set_demoted_qos(QosParams qos) { demoted_qos_ = qos; }
  [[nodiscard]] const QosParams& demoted_qos() const { return demoted_qos_; }

  [[nodiscard]] std::uint32_t levels() const { return levels_; }

  /// Checkpoint walk: the VC bindings (mutable via set_vc during fault
  /// recovery) and the demotion constants.
  void snap(snapshot::Walker& w);

 private:
  std::uint32_t input_port_;
  std::uint32_t levels_;
  PriorityFunction priority_;
  std::uint32_t phits_per_flit_;
  std::vector<std::uint32_t> output_of_vc_;
  std::vector<QosParams> qos_of_vc_;
  QosParams demoted_qos_{1, 1.0};
};

}  // namespace mmr
