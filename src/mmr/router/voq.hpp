// Virtual Output Queues (`qd=voq` / the input stage of `qd=cicq`): one FIFO
// per destination output at each input link, eliminating the head-of-line
// blocking a single input FIFO suffers.  Per-VC occupancy is still tracked
// against the per-VC buffer budget so the NIC credit loop (and the credit-
// conservation audit) is unchanged: a VC's flits may spread across VOQs, but
// the link never holds more of them than its credit allowance.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "mmr/arbiter/candidate.hpp"
#include "mmr/qos/priority.hpp"
#include "mmr/sim/time.hpp"
#include "mmr/traffic/flit.hpp"

namespace mmr {

namespace snapshot {
class Walker;
}

class VoqMemory {
 public:
  VoqMemory(std::uint32_t outputs, std::uint32_t vcs,
            std::uint32_t capacity_per_vc);

  struct Slot {
    Flit flit;
    Cycle arrived;
    std::uint32_t vc;
  };

  [[nodiscard]] std::uint32_t outputs() const {
    return static_cast<std::uint32_t>(queues_.size());
  }
  [[nodiscard]] std::uint32_t vcs() const {
    return static_cast<std::uint32_t>(vc_count_.size());
  }
  [[nodiscard]] std::uint32_t capacity_per_vc() const { return capacity_; }

  /// Admission is still per-VC: the NIC holds capacity_per_vc credits for
  /// each VC regardless of which VOQ its flits land in.
  [[nodiscard]] bool can_accept(std::uint32_t vc) const;
  void push(std::uint32_t output, std::uint32_t vc, const Flit& flit,
            Cycle now);

  [[nodiscard]] bool empty(std::uint32_t output) const;
  [[nodiscard]] std::uint32_t occupancy(std::uint32_t output) const;
  [[nodiscard]] const Slot& head(std::uint32_t output) const;

  Slot pop(std::uint32_t output);

  /// Outputs currently holding at least one flit (unordered; O(1) upkeep).
  [[nodiscard]] const std::vector<std::uint32_t>& occupied_outputs() const {
    return occupied_;
  }
  /// Flits of `vc` currently queued here (any VOQ).
  [[nodiscard]] std::uint32_t vc_occupancy(std::uint32_t vc) const;
  [[nodiscard]] std::uint64_t total_flits() const { return total_; }

  void check_invariants() const;

  /// Checkpoint walk: per-output FIFOs (flits + arrival stamps + VC tags),
  /// per-VC counts, the occupied-output index, and the total.
  void snap(snapshot::Walker& w);

 private:
  std::uint32_t capacity_;
  std::vector<std::deque<Slot>> queues_;    ///< one FIFO per output
  std::vector<std::uint32_t> vc_count_;     ///< flits held per VC
  std::vector<std::uint32_t> occupied_;
  std::vector<std::int32_t> occupied_pos_;  ///< output -> index in occupied_
  std::uint64_t total_ = 0;
};

/// Candidate selection over VOQs: the link scheduler's top-L policy
/// (priority descending, older head first, lower VC breaks ties) applied to
/// VOQ heads instead of per-VC heads.  A candidate's output is the VOQ
/// itself; its VC — and therefore its QoS constants and priority bias — is
/// the head flit's, so COA/SIABP ordering carries over unchanged and the
/// whole SwitchArbiter family runs on top without modification.
class VoqScheduler {
 public:
  VoqScheduler(std::uint32_t input_port, std::uint32_t levels,
               PriorityFunction priority, std::uint32_t phits_per_flit,
               std::vector<QosParams> qos_of_vc);

  /// Filter deciding whether a head VC may compete this cycle.
  using Eligibility = std::function<bool(std::uint32_t vc)>;

  /// Appends this port's candidates (up to `levels`) to `out`.
  void select(const VoqMemory& voq, Cycle now, CandidateSet& out,
              const Eligibility* eligible = nullptr) const;

  /// The biased priority the head flit of `output`'s VOQ has at `now`.
  [[nodiscard]] Priority head_priority(const VoqMemory& voq,
                                       std::uint32_t output, Cycle now) const;

  /// Rebinds `vc` to a re-admitted connection's QoS constants (the output
  /// binding lives in the router's VC routing map).
  void set_vc(std::uint32_t vc, QosParams qos);

  void set_demoted_qos(QosParams qos) { demoted_qos_ = qos; }

  /// Checkpoint walk: the VC QoS bindings and demotion constants.
  void snap(snapshot::Walker& w);

 private:
  std::uint32_t input_port_;
  std::uint32_t levels_;
  PriorityFunction priority_;
  std::uint32_t phits_per_flit_;
  std::vector<QosParams> qos_of_vc_;
  QosParams demoted_qos_{1, 1.0};
};

}  // namespace mmr
