#include "mmr/router/credits.hpp"

#include "mmr/sim/assert.hpp"
#include "mmr/snapshot/walker.hpp"

namespace mmr {

CreditManager::CreditManager(std::uint32_t vcs, std::uint32_t credits_per_vc,
                             Cycle return_latency)
    : credits_per_vc_(credits_per_vc),
      return_latency_(return_latency),
      credits_(vcs, credits_per_vc) {
  MMR_ASSERT(vcs > 0);
  MMR_ASSERT(credits_per_vc > 0);
}

std::uint32_t CreditManager::credits(std::uint32_t vc) const {
  MMR_ASSERT(vc < vcs());
  return credits_[vc];
}

void CreditManager::consume(std::uint32_t vc) {
  MMR_ASSERT(vc < vcs());
  MMR_ASSERT_MSG(credits_[vc] > 0, "sent without a credit");
  --credits_[vc];
}

void CreditManager::release(std::uint32_t vc, Cycle now) {
  MMR_ASSERT(vc < vcs());
  MMR_ASSERT_MSG(pending_.empty() || pending_.back().ready <= now + return_latency_,
                 "credit releases must be issued in time order");
  pending_.push_back({now + return_latency_, vc});
}

void CreditManager::tick(Cycle now) {
  while (!pending_.empty() && pending_.front().ready <= now) {
    const std::uint32_t vc = pending_.front().vc;
    pending_.pop_front();
    MMR_ASSERT_MSG(credits_[vc] < credits_per_vc_,
                   "credit returned beyond buffer capacity");
    ++credits_[vc];
  }
}

std::uint32_t CreditManager::pending_for(std::uint32_t vc) const {
  MMR_ASSERT(vc < vcs());
  std::uint32_t count = 0;
  for (const PendingReturn& p : pending_) {
    if (p.vc == vc) ++count;
  }
  return count;
}

void CreditManager::restore(std::uint32_t vc, std::uint32_t count) {
  MMR_ASSERT(vc < vcs());
  MMR_ASSERT_MSG(credits_[vc] + pending_for(vc) + count <= credits_per_vc_,
                 "restore would exceed the per-VC credit budget");
  credits_[vc] += count;
}

void CreditManager::reclaim(std::uint32_t vc, std::uint32_t count) {
  MMR_ASSERT(vc < vcs());
  MMR_ASSERT_MSG(credits_[vc] >= count,
                 "reclaim of credits that are not currently available");
  credits_[vc] -= count;
}

void CreditManager::check_invariants() const {
  // Conservation: credits held + credits travelling back never exceed the
  // per-VC budget (the remainder are slots occupied in the router).
  std::vector<std::uint32_t> in_flight(credits_.size(), 0);
  for (const PendingReturn& p : pending_) ++in_flight[p.vc];
  for (std::uint32_t vc = 0; vc < credits_.size(); ++vc) {
    MMR_ASSERT(credits_[vc] + in_flight[vc] <= credits_per_vc_);
  }
}

void CreditManager::snap(snapshot::Walker& w) {
  snapshot::walk_vector_pod(w, credits_);
  snapshot::walk_deque(w, pending_, [](snapshot::Walker& v, PendingReturn& p) {
    snapshot::value(v, p.ready);
    snapshot::value(v, p.vc);
  });
}

}  // namespace mmr
