#include "mmr/router/link.hpp"

#include <algorithm>
#include <cstdio>

#include "mmr/sim/assert.hpp"
#include "mmr/snapshot/walker.hpp"

namespace mmr {

LinkPipeline::LinkPipeline(Cycle latency) : latency_(latency) {}

void LinkPipeline::push(const LinkTransfer& transfer, Cycle now) {
  if (!(last_push_ == kNever || now > last_push_)) [[unlikely]] {
    char msg[128];
    std::snprintf(msg, sizeof msg,
                  "a link carries at most one flit per cycle: cycle %llu "
                  "pushed again after a push at cycle %llu",
                  static_cast<unsigned long long>(now),
                  static_cast<unsigned long long>(last_push_));
    detail::assert_fail("now > last_push_", __FILE__, __LINE__, msg);
  }
  MMR_ASSERT(in_flight_.empty() || in_flight_.back().arrives <= now + latency_);
  last_push_ = now;
  in_flight_.push_back({now + latency_, transfer});
  ++carried_;
}

void LinkPipeline::pop_due(Cycle now, std::vector<LinkTransfer>& out) {
  if (now < last_pop_) [[unlikely]] {
    char msg[128];
    std::snprintf(msg, sizeof msg,
                  "pop_due times must not decrease: cycle %llu after a pop "
                  "at cycle %llu",
                  static_cast<unsigned long long>(now),
                  static_cast<unsigned long long>(last_pop_));
    detail::assert_fail("now >= last_pop_", __FILE__, __LINE__, msg);
  }
  last_pop_ = now;
  while (!in_flight_.empty() && in_flight_.front().arrives <= now) {
    out.push_back(in_flight_.front().transfer);
    in_flight_.pop_front();
  }
}

std::uint32_t LinkPipeline::in_flight_on_vc(std::uint32_t vc) const {
  std::uint32_t count = 0;
  for (const InFlight& f : in_flight_) {
    if (f.transfer.vc == vc) ++count;
  }
  return count;
}

std::uint32_t LinkPipeline::drain_vc(std::uint32_t vc) {
  const std::size_t before = in_flight_.size();
  std::erase_if(in_flight_,
                [vc](const InFlight& f) { return f.transfer.vc == vc; });
  return static_cast<std::uint32_t>(before - in_flight_.size());
}

std::uint32_t LinkPipeline::drain_all() {
  const auto count = static_cast<std::uint32_t>(in_flight_.size());
  in_flight_.clear();
  return count;
}

void LinkPipeline::snap(snapshot::Walker& w) {
  snapshot::value(w, last_push_);
  snapshot::value(w, last_pop_);
  snapshot::walk_deque(w, in_flight_, [](snapshot::Walker& v, InFlight& f) {
    snapshot::value(v, f.arrives);
    snap_flit(v, f.transfer.flit);
    snapshot::value(v, f.transfer.vc);
  });
  snapshot::value(w, carried_);
}

}  // namespace mmr
