#include "mmr/router/link.hpp"

#include "mmr/sim/assert.hpp"

namespace mmr {

LinkPipeline::LinkPipeline(Cycle latency) : latency_(latency) {}

void LinkPipeline::push(const LinkTransfer& transfer, Cycle now) {
  MMR_ASSERT_MSG(last_push_ == kNever || now > last_push_,
                 "a link carries at most one flit per cycle");
  MMR_ASSERT(in_flight_.empty() || in_flight_.back().arrives <= now + latency_);
  last_push_ = now;
  in_flight_.push_back({now + latency_, transfer});
  ++carried_;
}

void LinkPipeline::pop_due(Cycle now, std::vector<LinkTransfer>& out) {
  while (!in_flight_.empty() && in_flight_.front().arrives <= now) {
    out.push_back(in_flight_.front().transfer);
    in_flight_.pop_front();
  }
}

}  // namespace mmr
