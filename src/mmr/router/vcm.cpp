#include "mmr/router/vcm.hpp"

#include "mmr/sim/assert.hpp"
#include "mmr/snapshot/walker.hpp"

namespace mmr {

VirtualChannelMemory::VirtualChannelMemory(std::uint32_t vcs,
                                           std::uint32_t capacity_per_vc,
                                           std::uint32_t banks)
    : capacity_(capacity_per_vc),
      queues_(vcs),
      pushes_per_vc_(vcs, 0),
      bank_used_(banks, 0),
      occupied_pos_(vcs, -1) {
  MMR_ASSERT(vcs > 0);
  MMR_ASSERT(capacity_per_vc > 0);
  MMR_ASSERT(banks > 0);
}

bool VirtualChannelMemory::can_accept(std::uint32_t vc) const {
  MMR_ASSERT(vc < vcs());
  return queues_[vc].size() < capacity_;
}

void VirtualChannelMemory::push(std::uint32_t vc, const Flit& flit,
                                Cycle now) {
  MMR_ASSERT(vc < vcs());
  MMR_ASSERT_MSG(can_accept(vc),
                 "VC buffer overflow: credit flow control was violated");
  Slot slot;
  slot.flit = flit;
  slot.arrived = now;
  slot.bank = static_cast<std::uint32_t>(
      (vc + pushes_per_vc_[vc]) % bank_used_.size());
  ++pushes_per_vc_[vc];
  ++bank_used_[slot.bank];
  if (queues_[vc].empty()) {
    occupied_pos_[vc] = static_cast<std::int32_t>(occupied_.size());
    occupied_.push_back(vc);
  }
  queues_[vc].push_back(slot);
  ++total_;
}

bool VirtualChannelMemory::empty(std::uint32_t vc) const {
  MMR_ASSERT(vc < vcs());
  return queues_[vc].empty();
}

std::uint32_t VirtualChannelMemory::occupancy(std::uint32_t vc) const {
  MMR_ASSERT(vc < vcs());
  return static_cast<std::uint32_t>(queues_[vc].size());
}

const Flit& VirtualChannelMemory::head(std::uint32_t vc) const {
  MMR_ASSERT(vc < vcs());
  MMR_ASSERT(!queues_[vc].empty());
  return queues_[vc].front().flit;
}

Cycle VirtualChannelMemory::head_arrival(std::uint32_t vc) const {
  MMR_ASSERT(vc < vcs());
  MMR_ASSERT(!queues_[vc].empty());
  return queues_[vc].front().arrived;
}

Flit VirtualChannelMemory::pop(std::uint32_t vc) {
  MMR_ASSERT(vc < vcs());
  MMR_ASSERT(!queues_[vc].empty());
  Slot slot = queues_[vc].front();
  queues_[vc].pop_front();
  MMR_ASSERT(bank_used_[slot.bank] > 0);
  --bank_used_[slot.bank];
  --total_;
  if (queues_[vc].empty()) {
    // Swap-remove from the occupied list.
    const auto pos = static_cast<std::size_t>(occupied_pos_[vc]);
    const std::uint32_t moved = occupied_.back();
    occupied_[pos] = moved;
    occupied_pos_[moved] = static_cast<std::int32_t>(pos);
    occupied_.pop_back();
    occupied_pos_[vc] = -1;
  }
  return slot.flit;
}

void VirtualChannelMemory::check_invariants() const {
  std::uint64_t counted = 0;
  std::uint64_t bank_total = 0;
  for (std::uint32_t used : bank_used_) bank_total += used;
  for (std::uint32_t vc = 0; vc < vcs(); ++vc) {
    counted += queues_[vc].size();
    MMR_ASSERT(queues_[vc].size() <= capacity_);
    const bool listed = occupied_pos_[vc] != -1;
    MMR_ASSERT(listed == !queues_[vc].empty());
    if (listed) {
      const auto pos = static_cast<std::size_t>(occupied_pos_[vc]);
      MMR_ASSERT(pos < occupied_.size());
      MMR_ASSERT(occupied_[pos] == vc);
    }
  }
  MMR_ASSERT(counted == total_);
  MMR_ASSERT(bank_total == total_);
  MMR_ASSERT(occupied_.size() <= vcs());
}

void VirtualChannelMemory::snap(snapshot::Walker& w) {
  snapshot::walk_vector(w, queues_, [](snapshot::Walker& v,
                                       std::deque<Slot>& q) {
    snapshot::walk_deque(v, q, [](snapshot::Walker& u, Slot& slot) {
      snap_flit(u, slot.flit);
      snapshot::value(u, slot.arrived);
      snapshot::value(u, slot.bank);
    });
  });
  snapshot::walk_vector_pod(w, pushes_per_vc_);
  snapshot::walk_vector_pod(w, bank_used_);
  snapshot::walk_vector_pod(w, occupied_);
  snapshot::walk_vector_pod(w, occupied_pos_);
  snapshot::value(w, total_);
}

}  // namespace mmr
