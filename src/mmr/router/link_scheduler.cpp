#include "mmr/router/link_scheduler.hpp"

#include <algorithm>

#include "mmr/sim/assert.hpp"
#include "mmr/snapshot/walker.hpp"
#include "mmr/trace/event.hpp"
#include "mmr/trace/tracer.hpp"

namespace mmr {

LinkScheduler::LinkScheduler(std::uint32_t input_port, std::uint32_t levels,
                             PriorityFunction priority,
                             std::uint32_t phits_per_flit,
                             std::vector<std::uint32_t> output_of_vc,
                             std::vector<QosParams> qos_of_vc)
    : input_port_(input_port),
      levels_(levels),
      priority_(priority),
      phits_per_flit_(phits_per_flit),
      output_of_vc_(std::move(output_of_vc)),
      qos_of_vc_(std::move(qos_of_vc)) {
  MMR_ASSERT(levels_ >= 1);
  MMR_ASSERT(phits_per_flit_ >= 1);
  MMR_ASSERT(output_of_vc_.size() == qos_of_vc_.size());
}

void LinkScheduler::set_vc(std::uint32_t vc, std::uint32_t output,
                           QosParams qos) {
  MMR_ASSERT(vc < output_of_vc_.size());
  output_of_vc_[vc] = output;
  qos_of_vc_[vc] = qos;
}

Priority LinkScheduler::head_priority(const VirtualChannelMemory& vcm,
                                      std::uint32_t vc, Cycle now) const {
  MMR_ASSERT(vc < qos_of_vc_.size());
  const Cycle arrived = vcm.head_arrival(vc);
  MMR_ASSERT(arrived <= now);
  const std::uint64_t age_router_cycles = (now - arrived) * phits_per_flit_;
  // Policed-excess flits compete with a minimal best-effort claim instead
  // of their connection's reserved one (demote policy).
  const QosParams& qos =
      vcm.head(vc).demoted ? demoted_qos_ : qos_of_vc_[vc];
  return priority_(qos, age_router_cycles);
}

void LinkScheduler::select(const VirtualChannelMemory& vcm, Cycle now,
                           CandidateSet& out,
                           const Eligibility* eligible) const {
  struct Entry {
    Priority priority;
    Cycle arrived;
    std::uint32_t vc;
  };
  // Top-L selection by (priority desc, older-first, vc asc): a small sorted
  // insertion buffer beats sorting the whole occupied list for L << VCs.
  Entry best[64];
  MMR_ASSERT_MSG(levels_ <= 64, "candidate levels beyond selection buffer");
  std::uint32_t filled = 0;

  auto better = [](const Entry& a, const Entry& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.arrived != b.arrived) return a.arrived < b.arrived;
    return a.vc < b.vc;
  };

  for (std::uint32_t vc : vcm.occupied_vcs()) {
    MMR_ASSERT(vc < output_of_vc_.size());
    if (eligible != nullptr && !(*eligible)(vc)) continue;
    Entry entry{head_priority(vcm, vc, now), vcm.head_arrival(vc), vc};
    if (filled == levels_ && !better(entry, best[filled - 1])) continue;
    // Insertion sort into the buffer.
    std::uint32_t pos = std::min(filled, levels_ - 1);
    if (filled < levels_) ++filled;
    while (pos > 0 && better(entry, best[pos - 1])) {
      best[pos] = best[pos - 1];
      --pos;
    }
    best[pos] = entry;
  }

  for (std::uint32_t level = 0; level < filled; ++level) {
    Candidate candidate;
    candidate.input = static_cast<std::uint16_t>(input_port_);
    candidate.output = static_cast<std::uint16_t>(output_of_vc_[best[level].vc]);
    candidate.level = static_cast<std::uint8_t>(level);
    candidate.vc = best[level].vc;
    candidate.priority = best[level].priority;
    out.add(candidate);
    MMR_TRACE_EVENT(trace::candidate_event(now, candidate.input,
                                           candidate.output, candidate.vc,
                                           candidate.level,
                                           candidate.priority));
  }
}

void LinkScheduler::snap(snapshot::Walker& w) {
  snapshot::walk_vector_pod(w, output_of_vc_);
  snapshot::walk_vector(w, qos_of_vc_, [](snapshot::Walker& v, QosParams& q) {
    snapshot::value(v, q.slots_per_round);
    snapshot::value(v, q.iat_router_cycles);
  });
  snapshot::value(w, demoted_qos_.slots_per_round);
  snapshot::value(w, demoted_qos_.iat_router_cycles);
}

}  // namespace mmr
