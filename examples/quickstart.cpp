// Quickstart: build a CBR workload, run the MMR with the Candidate-Order
// Arbiter, and print the headline metrics.
//
//   ./quickstart [key=value ...]        (see src/mmr/sim/config.hpp)
//
// Example: ./quickstart arbiter=wfa measure=100000

#include <cstdio>
#include <iostream>

#include "mmr/core/simulation.hpp"
#include "mmr/mmu/spec.hpp"
#include "mmr/overload/spec.hpp"
#include "mmr/router/qd_spec.hpp"
#include "mmr/sim/table.hpp"
#include "mmr/snapshot/signals.hpp"
#include "mmr/snapshot/spec.hpp"
#include "mmr/trace/spec.hpp"

int main(int argc, char** argv) {
  mmr::SimConfig config;
  config.measure_cycles = 150'000;

  std::vector<std::string> overrides(argv + 1, argv + argc);
  try {
    mmr::apply_overrides(config, overrides);
    // Fail fast on bad specs (the simulation parses them at construction).
    if (!config.police_spec.empty())
      (void)mmr::overload::PoliceSpec::parse(config.police_spec);
    if (!config.rogue_spec.empty())
      (void)mmr::overload::RogueSpec::parse(config.rogue_spec);
    if (!config.trace_spec.empty())
      (void)mmr::trace::TraceSpec::parse(config.trace_spec);
    if (!config.qd_spec.empty())
      (void)mmr::QdSpec::parse(config.qd_spec);
    mmr::snapshot::validate_spec(config);
    if (!config.flow_spec.empty())
      (void)mmr::mmu::MmuSpec::parse(config.flow_spec);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  config.validate();

  // A random mix of the paper's three CBR classes at 60% offered load.
  mmr::Rng rng(config.seed, /*stream=*/1);
  mmr::CbrMixSpec mix;
  mix.target_load = 0.60;
  mmr::Workload workload = mmr::build_cbr_mix(config, mix, rng);

  std::printf("MMR quickstart: %ux%u router, %s arbiter, %s priorities\n",
              config.ports, config.ports, config.arbiter.c_str(),
              mmr::to_string(config.priority_scheme));
  std::printf("  workload: %zu CBR connections, generated load %.1f%%\n",
              workload.connections(),
              workload.generated_load(config.time_base()) * 100.0);

  mmr::MmrSimulation simulation(config, std::move(workload));
  mmr::SimulationMetrics metrics;
  try {
    metrics = simulation.run();
  } catch (const mmr::snapshot::Interrupted& stop) {
    return mmr::snapshot::report_interrupted(stop);
  }

  std::printf("\nafter %llu warmup + %llu measured cycles (flit cycle %.3f us):\n",
              static_cast<unsigned long long>(config.warmup_cycles),
              static_cast<unsigned long long>(config.measure_cycles),
              metrics.flit_cycle_us);
  std::printf("  delivered load        : %.1f%% (generated %.1f%%)\n",
              metrics.delivered_load * 100.0,
              metrics.generated_load_measured * 100.0);
  std::printf("  crossbar utilization  : %.1f%%\n",
              metrics.crossbar_utilization * 100.0);
  std::printf("  mean flit delay       : %.1f us (p99 %s)\n",
              metrics.flit_delay_us.mean(),
              metrics.per_class.empty() ? "-" : "per class below");
  std::printf("  backlog at end        : %llu flits\n",
              static_cast<unsigned long long>(metrics.backlog_flits));

  mmr::AsciiTable table({"class", "flits", "mean delay (us)", "p99 (us)",
                         "max (us)"});
  for (const mmr::ClassMetrics& cls : metrics.per_class) {
    table.add_row({cls.label, std::to_string(cls.flits_delivered),
                   mmr::AsciiTable::num(cls.flit_delay_us.mean(), 2),
                   mmr::AsciiTable::num(cls.flit_delay_hist.p99(), 2),
                   mmr::AsciiTable::num(cls.flit_delay_us.max(), 2)});
  }
  std::cout << '\n' << table.render();
  return 0;
}
