// Traced saturation: fly the flight recorder into a deliberate overload.
//
// An over-subscribed CBR mix (120% offered load) drives the router into
// saturation; the staged watchdog escalates kNormal -> ... -> kAlarm, and
// the moment it reaches the alarm stage the flight recorder dumps the last
// N events per router as mmr-trace-v1 JSONL — the post-mortem you would
// want from a real switch.  The run also prints the per-connection summary
// for the recorded window.
//
//   ./traced_saturation [key=value ...]    (see src/mmr/sim/config.hpp)
//
// Examples:
//   ./traced_saturation trace=flight,ring:8192,dump:my-crash
//   ./traced_saturation police=demote,wd_window:256 measure=100000
//   python3 scripts/trace_lint.py traced-saturation-watchdog-alarm-0.jsonl

#include <cstdio>
#include <iostream>

#include "mmr/core/simulation.hpp"
#include "mmr/router/qd_spec.hpp"
#include "mmr/snapshot/signals.hpp"
#include "mmr/snapshot/spec.hpp"
#include "mmr/trace/export.hpp"
#include "mmr/trace/tracer.hpp"

int main(int argc, char** argv) {
  mmr::SimConfig config;
  config.measure_cycles = 50'000;
  // Aggressive watchdog thresholds so the ladder reaches kAlarm quickly
  // once the backlog takes off.
  config.police_spec = "demote,wd_window:128,wd_high:16,wd_low:4";
  config.trace_spec = "flight,ring:2048,dump:traced-saturation";

  std::vector<std::string> overrides(argv + 1, argv + argc);
  try {
    mmr::apply_overrides(config, overrides);
    // Fail fast on a bad trace= spec (parsed again at construction).
    (void)mmr::trace::TraceSpec::parse(config.trace_spec);
    if (!config.qd_spec.empty())
      (void)mmr::QdSpec::parse(config.qd_spec);
    mmr::snapshot::validate_spec(config);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  config.validate();

  std::printf("Traced saturation: %ux%u router, %s arbiter, trace=%s\n\n",
              config.ports, config.ports, config.arbiter.c_str(),
              config.trace_spec.c_str());
  if (!mmr::trace::kCompiledIn)
    std::printf("note: tracing compiled out (-DMMR_TRACE=OFF); dumps will "
                "hold no events\n\n");

  mmr::Rng rng(config.seed, /*stream=*/1);
  mmr::CbrMixSpec mix;
  mix.target_load = 1.2;  // over-subscribed on purpose
  mix.classes = {mmr::kCbrHigh, mmr::kCbrMedium};
  mix.class_weights = {3.0, 1.0};
  mmr::MmrSimulation simulation(config,
                                mmr::build_cbr_mix(config, mix, rng));
  mmr::SimulationMetrics metrics;
  try {
    metrics = simulation.run();
  } catch (const mmr::snapshot::Interrupted& stop) {
    return mmr::snapshot::report_interrupted(stop);
  }

  std::printf("generated %llu flits, delivered %llu, backlog %llu\n",
              static_cast<unsigned long long>(metrics.flits_generated),
              static_cast<unsigned long long>(metrics.flits_delivered),
              static_cast<unsigned long long>(metrics.backlog_flits));

  const mmr::trace::Tracer* tracer = simulation.tracer();
  if (tracer == nullptr) {
    std::printf("\nno tracer configured (trace= was cleared); done.\n");
    return 0;
  }
  std::printf("traced %llu events into a %u-event flight ring\n\n",
              static_cast<unsigned long long>(tracer->emitted()),
              tracer->spec().ring);

  if (tracer->dump_paths().empty()) {
    std::printf("the watchdog never reached its alarm stage — raise the "
                "offered load or\nlower wd_high to see a flight dump.\n");
  } else {
    std::printf("flight recorder dumps (trigger in the filename):\n");
    for (const std::string& path : tracer->dump_paths())
      std::printf("  %s\n", path.c_str());
    std::printf("inspect with: python3 scripts/trace_lint.py %s\n",
                tracer->dump_paths().front().c_str());
  }

  std::printf("\nper-connection lifecycle counts over the recorded "
              "window:\n%s",
              mmr::trace::render_connection_summary(tracer->snapshot())
                  .c_str());
  return 0;
}
