// Cluster-scale example: four MMRs in a bidirectional ring connect eight
// hosts (two per router).  CBR connections run between random host pairs
// across the ring — the paper's single-router evaluation extended to the
// multi-router network its conclusions call for.
//
//   ./cluster_ring [key=value ...] [routers=4] [load=0.6] [traffic=cbr|vbr]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "mmr/network/network.hpp"
#include "mmr/router/qd_spec.hpp"
#include "mmr/sim/table.hpp"
#include "mmr/snapshot/signals.hpp"
#include "mmr/snapshot/spec.hpp"
#include "mmr/trace/spec.hpp"

int main(int argc, char** argv) {
  using namespace mmr;
  SimConfig config;
  config.measure_cycles = 150'000;

  std::uint32_t routers = 4;
  double load = 0.6;
  bool vbr = false;
  std::vector<std::string> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("routers=", 0) == 0) {
      routers = static_cast<std::uint32_t>(std::stoul(arg.substr(8)));
    } else if (arg.rfind("load=", 0) == 0) {
      load = std::stod(arg.substr(5));
    } else if (arg == "traffic=vbr") {
      vbr = true;
    } else if (arg == "traffic=cbr") {
      vbr = false;
    } else {
      overrides.push_back(arg);
    }
  }
  try {
    apply_overrides(config, overrides);
    // Fail fast on a bad trace= spec (parsed again at construction).
    if (!config.trace_spec.empty())
      (void)trace::TraceSpec::parse(config.trace_spec);
    if (!config.qd_spec.empty())
      (void)QdSpec::parse(config.qd_spec);
    snapshot::validate_spec(config);
    config.validate_network();  // e.g. flow=shared conflicts with a network
  } catch (const std::exception& error) {
    const std::string what = error.what();
    std::cerr << (what.rfind("error:", 0) == 0 ? "" : "error: ") << what
              << '\n';
    return 1;
  }
  config.validate();

  // Degenerate routers= values throw from the topology factory; surface
  // them as a clean diagnostic rather than an uncaught-exception abort.
  const NetworkTopology ring = [&]() -> NetworkTopology {
    try {
      return NetworkTopology::bidirectional_ring(routers, config.ports);
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << '\n';
      std::exit(1);
    }
  }();
  Rng rng(config.seed, 0xC1);
  NetworkWorkload workload = [&] {
    if (vbr) {
      VbrMixSpec mix;
      mix.target_load = load;
      mix.trace_gops = 8;
      return build_network_vbr_mix(config, ring, mix, rng);
    }
    CbrMixSpec mix;
    mix.target_load = load;
    return build_network_cbr_mix(config, ring, mix, rng);
  }();

  std::printf("Cluster ring: %u MMRs, %u hosts, %zu %s connections, %s "
              "arbiter, %.0f%% load per host link\n",
              routers, routers * (config.ports - 2),
              workload.connections.size(), vbr ? "MPEG-2 VBR" : "CBR",
              config.arbiter.c_str(), load * 100);

  MmrNetworkSimulation simulation(config, std::move(workload));
  NetworkMetrics metrics;
  try {
    metrics = simulation.run();
  } catch (const snapshot::Interrupted& stop) {
    return snapshot::report_interrupted(stop);
  }

  std::printf("\nAfter %llu measured cycles:\n",
              static_cast<unsigned long long>(config.measure_cycles));
  std::printf("  delivered %llu of %llu generated flits (%s)\n",
              static_cast<unsigned long long>(metrics.flits_delivered),
              static_cast<unsigned long long>(metrics.flits_generated),
              metrics.saturated() ? "SATURATED" : "keeping up");
  std::printf("  end-to-end delay: mean %.1f us, max %.1f us\n",
              metrics.flit_delay_us.mean(), metrics.flit_delay_us.max());
  std::printf("  mean path length: %.2f routers (max %.0f)\n",
              metrics.delivered_hops.mean(), metrics.delivered_hops.max());

  AsciiTable table({"class", "delivered", "mean delay (us)", "max (us)"});
  for (const ClassMetrics& cls : metrics.per_class) {
    table.add_row({cls.label, std::to_string(cls.flits_delivered),
                   AsciiTable::num(cls.flit_delay_us.mean(), 1),
                   AsciiTable::num(cls.flit_delay_us.max(), 1)});
  }
  std::cout << '\n' << table.render();

  if (metrics.frames_completed > 0) {
    std::printf("\nvideo: %llu frames completed, mean frame delay %.1f us\n",
                static_cast<unsigned long long>(metrics.frames_completed),
                metrics.frame_delay_us.mean());
  }
  std::printf("\nper-router crossbar utilization:");
  for (std::size_t r = 0; r < metrics.router_utilization.size(); ++r) {
    std::printf(" R%zu=%.1f%%", r, metrics.router_utilization[r] * 100);
  }
  std::printf("\n");
  return 0;
}
