// Mixed-traffic scenario: the MMR's design goal is to satisfy QoS for
// multimedia connections *while allocating the remaining bandwidth to
// best-effort traffic*.  This example runs CBR voice/video + VBR MPEG-2 +
// best-effort messages through one router and reports how each class fares
// under the chosen arbiter.
//
//   ./mixed_traffic [key=value ...] [qos_load=0.55] [be_load=0.35]
//
// Try `./mixed_traffic arbiter=wfa` to watch the QoS-blind arbiter let the
// best-effort background eat into multimedia delays.

#include <cstdio>
#include <iostream>

#include "mmr/core/simulation.hpp"
#include "mmr/router/qd_spec.hpp"
#include "mmr/sim/table.hpp"
#include "mmr/snapshot/signals.hpp"
#include "mmr/snapshot/spec.hpp"
#include "mmr/trace/spec.hpp"

int main(int argc, char** argv) {
  using namespace mmr;
  SimConfig config;
  config.measure_cycles = 250'000;

  double qos_load = 0.55;
  double be_load = 0.35;
  std::vector<std::string> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("qos_load=", 0) == 0) {
      qos_load = std::stod(arg.substr(9));
    } else if (arg.rfind("be_load=", 0) == 0) {
      be_load = std::stod(arg.substr(8));
    } else {
      overrides.push_back(arg);
    }
  }
  try {
    apply_overrides(config, overrides);
    // Fail fast on a bad trace= spec (parsed again at construction).
    if (!config.trace_spec.empty())
      (void)trace::TraceSpec::parse(config.trace_spec);
    if (!config.qd_spec.empty())
      (void)QdSpec::parse(config.qd_spec);
    snapshot::validate_spec(config);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  config.validate();

  // One workload, three traffic kinds: half the QoS budget as CBR, half as
  // MPEG-2 VBR, plus best-effort background on top.
  Rng rng(config.seed, 0x301D);
  Workload workload(config.ports);
  CbrMixSpec cbr_spec;
  cbr_spec.target_load = qos_load / 2;
  add_cbr_mix(workload, config, cbr_spec, rng);
  VbrMixSpec vbr_spec;
  vbr_spec.target_load = qos_load / 2;
  vbr_spec.trace_gops = 6;
  add_vbr_mix(workload, config, vbr_spec, rng);
  BestEffortSpec be_spec;
  be_spec.load = be_load;
  be_spec.connections_per_link = 6;
  add_best_effort(workload, config, be_spec, rng);

  std::printf("Mixed traffic through a %ux%u MMR (%s arbiter): "
              "%.0f%% QoS + %.0f%% best-effort offered\n",
              config.ports, config.ports, config.arbiter.c_str(),
              qos_load * 100, be_load * 100);
  std::printf("  %zu connections (%.1f%% total generated load)\n\n",
              workload.connections(),
              workload.generated_load(config.time_base()) * 100);

  MmrSimulation simulation(config, std::move(workload));
  SimulationMetrics metrics;
  try {
    metrics = simulation.run();
  } catch (const snapshot::Interrupted& stop) {
    return snapshot::report_interrupted(stop);
  }

  AsciiTable table({"class", "delivered flits", "mean delay (us)",
                    "p99 (us)", "max (us)"});
  for (const ClassMetrics& cls : metrics.per_class) {
    table.add_row({cls.label, std::to_string(cls.flits_delivered),
                   AsciiTable::num(cls.flit_delay_us.mean(), 1),
                   AsciiTable::num(cls.flit_delay_hist.p99(), 1),
                   AsciiTable::num(cls.flit_delay_us.max(), 1)});
  }
  std::cout << table.render() << '\n';
  std::printf("crossbar utilization %.1f%%, delivered %.1f%% of %.1f%% "
              "generated%s\n",
              metrics.crossbar_utilization * 100,
              metrics.delivered_load * 100,
              metrics.generated_load_measured * 100,
              metrics.saturated() ? "  [SATURATED]" : "");
  std::printf("VBR frame delay %.1f us mean, jitter %.2f us mean\n",
              metrics.frame_delay_us.mean(), metrics.frame_jitter_us.mean());
  std::printf("\nReading guide: with the Candidate-Order Arbiter the QoS "
              "classes keep low,\nbounded delays while best-effort absorbs "
              "the slack; a priority-blind arbiter\nspreads the pain "
              "across every class instead.\n");
  return 0;
}
