// Arbiter playground: single-step the switch schedulers on a hand-crafted
// contention scenario and print every decision — the fastest way to see how
// COA's port ordering + priority arbitration differs from WFA's positional
// wave.  Takes an optional list of arbiters.
//
//   ./arbiter_playground [coa wfa wwfa islip pim greedy maxmatch]

#include <cstdio>
#include <iostream>

#include "mmr/arbiter/factory.hpp"
#include "mmr/arbiter/verify.hpp"
#include "mmr/sim/table.hpp"

namespace {

mmr::Candidate make_candidate(std::uint32_t input, std::uint32_t output,
                              std::uint32_t level, mmr::Priority priority,
                              std::uint32_t vc) {
  mmr::Candidate c;
  c.input = static_cast<std::uint16_t>(input);
  c.output = static_cast<std::uint16_t>(output);
  c.level = static_cast<std::uint8_t>(level);
  c.priority = priority;
  c.vc = vc;
  return c;
}

/// The scenario: a hot output (2) contested by three inputs with very
/// different priorities, plus secondary candidates that a good scheduler
/// should fall back to.
mmr::CandidateSet scenario() {
  mmr::CandidateSet set(4, 2);
  set.add(make_candidate(0, 2, 0, 5000, 10));  // urgent video flit
  set.add(make_candidate(0, 0, 1, 120, 11));
  set.add(make_candidate(1, 2, 0, 40, 20));    // casual contender
  set.add(make_candidate(1, 3, 1, 30, 21));
  set.add(make_candidate(2, 2, 0, 900, 30));   // mid priority contender
  set.add(make_candidate(2, 1, 1, 850, 31));
  set.add(make_candidate(3, 1, 0, 60, 40));    // only level-0 for output 1
  return set;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmr;
  std::vector<std::string> names(argv + 1, argv + argc);
  if (names.empty()) names = arbiter_names();

  const CandidateSet set = scenario();
  std::cout << "Scenario: selection matrix (input, level) -> output "
               "[priority]\n";
  for (const Candidate& c : set.all()) {
    std::printf("  input %u level %u -> output %u  [prio %5llu, vc %u]\n",
                c.input, c.level, c.output,
                static_cast<unsigned long long>(c.priority), c.vc);
  }
  std::cout << "\nOutput 2 is hot: inputs 0 (prio 5000), 1 (40), 2 (900) all "
               "want it at level 0.\n\n";

  AsciiTable table({"arbiter", "matching", "size", "hot output 2 went to",
                    "total granted priority"});
  for (const std::string& name : names) {
    std::unique_ptr<SwitchArbiter> arbiter;
    try {
      arbiter = make_arbiter(name, 4, Rng(0x5EED, 0x9A9));
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << '\n';
      return 1;
    }
    const Matching matching = arbiter->arbitrate(set);
    const MatchingCheck check = check_matching(set, matching);
    if (!check.valid) {
      std::cerr << name << " produced an invalid matching: " << check.problem
                << '\n';
      return 1;
    }
    std::string pairs;
    Priority total = 0;
    for (std::uint32_t input = 0; input < 4; ++input) {
      const std::int32_t output = matching.output_of(input);
      if (output == -1) continue;
      if (!pairs.empty()) pairs += ", ";
      pairs += std::to_string(input) + "->" + std::to_string(output);
      total += set.at(static_cast<std::size_t>(matching.candidate_of(input)))
                   .priority;
    }
    const std::int32_t hot = matching.input_of(2);
    table.add_row({name, pairs, std::to_string(matching.size()),
                   hot == -1 ? "-" : "input " + std::to_string(hot),
                   std::to_string(total)});
  }
  std::cout << table.render();
  std::cout << "\nWhat to look for: COA hands output 2 to input 0 (highest "
               "priority) and still\nfinds work for the others; the fixed "
               "WFA grants by position, not priority.\n";
  return 0;
}
