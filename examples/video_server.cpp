// Video-server scenario: the paper's motivating workload.  A cluster node
// streams MPEG-2 video to clients through one MMR: VBR connections built
// from the Table-1 sequence library, smooth-rate injection, QoS assessed at
// the application level (frame delay and jitter against MPEG-2 playback
// tolerances).
//
//   ./video_server [key=value ...] [load=0.7] [model=SR|BB]

#include <cstdio>
#include <iostream>
#include <map>

#include "mmr/core/simulation.hpp"
#include "mmr/router/qd_spec.hpp"
#include "mmr/sim/table.hpp"
#include "mmr/snapshot/signals.hpp"
#include "mmr/snapshot/spec.hpp"
#include "mmr/trace/spec.hpp"

int main(int argc, char** argv) {
  using namespace mmr;
  SimConfig config;
  config.measure_cycles = 300'000;  // ~15 video frame times

  double load = 0.7;
  InjectionModel model = InjectionModel::kSmoothRate;
  std::vector<std::string> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("load=", 0) == 0) {
      load = std::stod(arg.substr(5));
    } else if (arg == "model=BB") {
      model = InjectionModel::kBackToBack;
    } else if (arg == "model=SR") {
      model = InjectionModel::kSmoothRate;
    } else {
      overrides.push_back(arg);
    }
  }
  try {
    apply_overrides(config, overrides);
    // Fail fast on a bad trace= spec (parsed again at construction).
    if (!config.trace_spec.empty())
      (void)trace::TraceSpec::parse(config.trace_spec);
    if (!config.qd_spec.empty())
      (void)QdSpec::parse(config.qd_spec);
    snapshot::validate_spec(config);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  config.validate();

  Rng rng(config.seed, 0x71DE0);
  VbrMixSpec spec;
  spec.target_load = load;
  spec.model = model;
  spec.trace_gops = 8;
  Workload workload = build_vbr_mix(config, spec, rng);

  std::printf("Video server: %zu MPEG-2 streams, %s injection, %s arbiter, "
              "target load %.0f%%\n",
              workload.connections(), to_string(model),
              config.arbiter.c_str(), load * 100);

  // Per-sequence stream census.
  AsciiTable census({"sequence", "streams", "mean Mbps", "peak Mbps"});
  struct Row {
    int count = 0;
    double mean = 0;
    double peak = 0;
  };
  std::map<std::string, Row> rows;
  for (const auto& source : workload.sources) {
    const auto* vbr = dynamic_cast<const VbrSource*>(source.get());
    Row& row = rows[vbr->trace().sequence];
    ++row.count;
    row.mean += vbr->trace().mean_bps() / 1e6;
    row.peak = std::max(row.peak, vbr->trace().peak_bps() / 1e6);
  }
  for (const auto& [name, row] : rows) {
    census.add_row({name, std::to_string(row.count),
                    AsciiTable::num(row.mean / row.count, 1),
                    AsciiTable::num(row.peak, 1)});
  }
  std::cout << census.render() << '\n';

  MmrSimulation simulation(config, std::move(workload));
  SimulationMetrics metrics;
  try {
    metrics = simulation.run();
  } catch (const snapshot::Interrupted& stop) {
    return snapshot::report_interrupted(stop);
  }

  std::printf("Results over %llu measured cycles (%.1f ms of video):\n",
              static_cast<unsigned long long>(config.measure_cycles),
              config.time_base().cycles_to_us(
                  static_cast<double>(config.measure_cycles)) / 1e3);
  std::printf("  crossbar utilization : %.1f%% (generated %.1f%%)\n",
              metrics.crossbar_utilization * 100,
              metrics.generated_load_measured * 100);
  std::printf("  frames completed     : %llu\n",
              static_cast<unsigned long long>(metrics.frames_completed));
  std::printf("  mean frame delay     : %.1f us (p99 %.1f, max %.1f)\n",
              metrics.frame_delay_us.mean(), metrics.frame_delay_hist.p99(),
              metrics.frame_delay_us.max());
  std::printf("  mean frame jitter    : %.2f us (max %.2f)\n",
              metrics.frame_jitter_us.mean(), metrics.max_frame_jitter_us);

  // MPEG-2 playback tolerates several milliseconds of jitter (absorbed at
  // the receiver); flag the verdict the way an operator would read it.
  const bool qos_ok = !metrics.saturated() &&
                      metrics.max_frame_jitter_us < 3000.0;
  std::printf("\nQoS verdict: %s\n",
              qos_ok ? "OK — streams are playable"
                     : "DEGRADED — router saturated or jitter beyond "
                       "absorption capacity");
  return qos_ok ? 0 : 2;
}
