// Rogue tenant: one misbehaving video customer on a shared MMR port.
//
// A rack of compliant CBR video connections shares the router with a few
// connections whose sources ignore their admitted contract and inject 4x
// their declared rate.  Run once unprotected and once with injection
// policing, and compare who pays for the overload.
//
//   ./rogue_tenant [key=value ...]        (see src/mmr/sim/config.hpp)
//
// Examples:
//   ./rogue_tenant police=drop
//   ./rogue_tenant police=shape,penalty:64 rogue=count:4,scale:6
//   ./rogue_tenant police=demote,wd_window:256 measure=200000

#include <cstdio>
#include <iostream>

#include "mmr/core/report.hpp"
#include "mmr/core/simulation.hpp"
#include "mmr/mmu/spec.hpp"
#include "mmr/overload/spec.hpp"
#include "mmr/router/qd_spec.hpp"
#include "mmr/snapshot/signals.hpp"
#include "mmr/snapshot/spec.hpp"
#include "mmr/trace/spec.hpp"

namespace {

mmr::SimulationMetrics run_once(mmr::SimConfig config) {
  mmr::Rng rng(config.seed, /*stream=*/1);
  mmr::CbrMixSpec mix;
  mix.target_load = 0.55;
  mix.classes = {mmr::kCbrHigh, mmr::kCbrMedium};
  mix.class_weights = {3.0, 1.0};
  mmr::MmrSimulation simulation(config,
                                mmr::build_cbr_mix(config, mix, rng));
  return simulation.run();
}

}  // namespace

int main(int argc, char** argv) {
  mmr::SimConfig config;
  config.measure_cycles = 100'000;
  // A quarter of the tenants break their contract at 6x the admitted rate
  // — enough aggregate excess to saturate output links and push compliant
  // video past its deadline when nothing polices the ingress.
  config.rogue_spec = "frac:0.25,scale:6";
  config.police_spec = "demote";

  std::vector<std::string> overrides(argv + 1, argv + argc);
  try {
    mmr::apply_overrides(config, overrides);
    // Fail fast on bad specs (the simulation parses them at construction).
    if (!config.police_spec.empty())
      (void)mmr::overload::PoliceSpec::parse(config.police_spec);
    if (!config.rogue_spec.empty())
      (void)mmr::overload::RogueSpec::parse(config.rogue_spec);
    if (!config.trace_spec.empty())
      (void)mmr::trace::TraceSpec::parse(config.trace_spec);
    if (!config.qd_spec.empty())
      (void)mmr::QdSpec::parse(config.qd_spec);
    mmr::snapshot::validate_spec(config);
    if (!config.flow_spec.empty())
      (void)mmr::mmu::MmuSpec::parse(config.flow_spec);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  config.validate();

  std::printf("Rogue tenant: %ux%u router, %s arbiter, rogue=%s\n\n",
              config.ports, config.ports, config.arbiter.c_str(),
              config.rogue_spec.c_str());

  // Pass 1: same rogues, no protection.
  mmr::SimConfig unprotected = config;
  unprotected.police_spec.clear();
  mmr::SimulationMetrics before;
  mmr::SimulationMetrics after;
  try {
    before = run_once(unprotected);
    std::printf("--- unprotected ---\n");
    std::printf("  compliant deadline violations: %.2f%% (%llu of %llu)\n",
                before.overload.compliant_violation_rate() * 100.0,
                static_cast<unsigned long long>(
                    before.overload.compliant_violations),
                static_cast<unsigned long long>(
                    before.overload.compliant_delivered));
    std::printf("  end-of-run backlog: %llu flits\n\n",
                static_cast<unsigned long long>(before.backlog_flits));

    // Pass 2: injection policing on.
    after = run_once(config);
  } catch (const mmr::snapshot::Interrupted& stop) {
    return mmr::snapshot::report_interrupted(stop);
  }
  std::printf("--- police=%s ---\n", config.police_spec.c_str());
  mmr::print_overload_summary(std::cout, after);
  std::cout << '\n' << mmr::overload_table(after).render() << '\n';
  std::printf(
      "Compliant violations %.2f%% -> %.2f%%: the policer confines the "
      "overload to the\ntenants that caused it.\n",
      before.overload.compliant_violation_rate() * 100.0,
      after.overload.compliant_violation_rate() * 100.0);
  return 0;
}
