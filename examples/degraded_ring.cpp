// Fault-injection example: the cluster ring from cluster_ring.cpp, but one
// ring link fails mid-run while background bit errors drop and corrupt the
// occasional flit.  Watch the network tear the affected connections down,
// reroute them the other way around the ring, and heal the leaked credits
// with the resync watchdog.
//
//   ./degraded_ring [key=value ...] [routers=4] [load=0.5] [fault=SPEC]
//
// The fault spec uses the same grammar as the `fault=` SimConfig override,
// e.g.  fault=drop:1e-3,down:0:30000:45000

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "mmr/network/network.hpp"
#include "mmr/router/qd_spec.hpp"
#include "mmr/snapshot/signals.hpp"
#include "mmr/snapshot/spec.hpp"
#include "mmr/trace/spec.hpp"

int main(int argc, char** argv) {
  using namespace mmr;
  SimConfig config;
  config.measure_cycles = 150'000;

  std::uint32_t routers = 4;
  double load = 0.5;
  std::string fault_spec;
  std::vector<std::string> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("routers=", 0) == 0) {
      routers = static_cast<std::uint32_t>(std::stoul(arg.substr(8)));
    } else if (arg.rfind("load=", 0) == 0) {
      load = std::stod(arg.substr(5));
    } else if (arg.rfind("fault=", 0) == 0) {
      fault_spec = arg.substr(6);
    } else {
      overrides.push_back(arg);
    }
  }
  try {
    apply_overrides(config, overrides);
    (void)FaultPlan::parse(fault_spec);  // fail fast on a bad fault= spec
    if (!config.trace_spec.empty())
      (void)trace::TraceSpec::parse(config.trace_spec);
    if (!config.qd_spec.empty())
      (void)QdSpec::parse(config.qd_spec);
    snapshot::validate_spec(config);
    config.validate_network();  // e.g. flow=shared conflicts with a network
  } catch (const std::exception& error) {
    const std::string what = error.what();
    std::cerr << (what.rfind("error:", 0) == 0 ? "" : "error: ") << what
              << '\n';
    return 1;
  }
  config.validate();
  if (fault_spec.empty()) {
    // Default drama: light bit errors everywhere, and ring channel 0 fails
    // for a third of the run.
    const Cycle down_at = config.warmup_cycles + config.measure_cycles / 3;
    const Cycle up_at = down_at + config.measure_cycles / 3;
    fault_spec = "drop:2e-4,corrupt:1e-4,credit_loss:1e-4,down:0:" +
                 std::to_string(down_at) + ":" + std::to_string(up_at);
  }
  config.fault_spec = fault_spec;

  // Degenerate routers= values throw from the topology factory; surface
  // them as a clean diagnostic rather than an uncaught-exception abort.
  const NetworkTopology ring = [&]() -> NetworkTopology {
    try {
      return NetworkTopology::bidirectional_ring(routers, config.ports);
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << '\n';
      std::exit(1);
    }
  }();
  Rng rng(config.seed, 0xC1);
  CbrMixSpec mix;
  mix.target_load = load;
  NetworkWorkload workload = build_network_cbr_mix(config, ring, mix, rng);

  std::printf("Degraded ring: %u MMRs, %zu CBR connections, %s arbiter, "
              "%.0f%% load\nfault plan: %s\n",
              routers, workload.connections.size(), config.arbiter.c_str(),
              load * 100, fault_spec.c_str());

  MmrNetworkSimulation simulation(config, std::move(workload));
  NetworkMetrics metrics;
  try {
    metrics = simulation.run();
  } catch (const snapshot::Interrupted& stop) {
    return snapshot::report_interrupted(stop);
  }
  const DegradationMetrics& deg = metrics.degradation;

  std::printf("\nAfter %llu measured cycles:\n",
              static_cast<unsigned long long>(config.measure_cycles));
  std::printf("  delivered %llu of %llu generated flits\n",
              static_cast<unsigned long long>(metrics.flits_delivered),
              static_cast<unsigned long long>(metrics.flits_generated));
  std::printf("  wire losses: %llu dropped, %llu corrupted, %llu flushed at "
              "teardown\n",
              static_cast<unsigned long long>(deg.flits_dropped),
              static_cast<unsigned long long>(deg.flits_corrupted),
              static_cast<unsigned long long>(deg.flits_flushed));
  std::printf("  credits: %llu lost on the wire, %llu healed in %llu resync "
              "events\n",
              static_cast<unsigned long long>(deg.credits_lost),
              static_cast<unsigned long long>(deg.credits_restored),
              static_cast<unsigned long long>(deg.resync_events));
  std::printf("  connections: %llu torn down, %llu rerouted, %llu re-admitted "
              "after the\n  link came back, %llu lost for good\n",
              static_cast<unsigned long long>(deg.teardowns),
              static_cast<unsigned long long>(deg.reroutes),
              static_cast<unsigned long long>(deg.readmissions),
              static_cast<unsigned long long>(deg.connections_lost));
  if (!deg.recovery_latency_us.empty()) {
    std::printf("  recovery latency: mean %.1f us, p95 %.1f us, max %.1f us\n",
                deg.recovery_latency_us.mean(),
                deg.recovery_latency_hist.p95(),
                deg.recovery_latency_us.max());
  }
  std::printf("  QoS violations (> %.0f-cycle deadline): %.2f%% during fault "
              "windows vs\n  %.2f%% in calm conditions\n",
              FaultPlan::parse(fault_spec).qos_deadline_cycles,
              deg.violation_rate_during_fault() * 100,
              deg.violation_rate_outside_fault() * 100);
  std::printf("\n  per-class survival:");
  for (const ClassMetrics& cls : metrics.per_class) {
    std::printf("  %s %.2f%%", cls.label.c_str(),
                survival_rate(cls) * 100);
  }
  std::printf("\n");
  return 0;
}
