// Perf baseline: measures simulated-cycles/second, per-phase wall-time
// shares, and hot-path allocation counts across arbiters and port counts,
// then emits machine-readable BENCH_perf.json (schema "mmr-perf-v1") for
// scripts/bench_compare.py to diff against an earlier baseline.
//
// Sections:
//   sim-cbr          one full simulation per (arbiter, ports), probe armed
//   arbitrate-micro  tight arbitrate_into() loop over generated candidate
//                    sets (isolates the switch-arbitration hot path)
//   sweep-cbr        run_sweep wall time per arbiter (the end-to-end figure
//                    pipeline, including thread-pool parallelism)
//
// Arguments (key=value):
//   out=FILE         write the JSON baseline here (default BENCH_perf.json)
//   mode=MODE        quick (default) | full | smoke  -- run length preset
//   arbiters=a,b     arbiters to measure (default coa,coa-scan,wfa,islip)
//   ports=4,8        port counts for the sim-cbr section (full simulations)
//   micro_ports=...  port counts for the arbitrate-micro section (defaults
//                    to 4,8,16,32,64,128 — the micro loop is cheap enough to
//                    chart the wide-port scaling the bitset engines target)
//   threads=N        sweep worker threads (0 = hardware concurrency)
//   alias=F:T[,F:T]  relabel arbiter FROM as TO in record labels; lets the
//                    reference engines (coa-scan, wfa-scan, islip-scan,
//                    pim-scan) be recorded under the labels of their
//                    optimized twins so two baselines diff cleanly:
//                      perf_baseline arbiters=coa-scan,wfa-scan
//                        alias=coa-scan:coa,wfa-scan:wfa
//                        out=BENCH_perf_before.json

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "mmr/audit/generator.hpp"
#include "mmr/core/experiment.hpp"
#include "mmr/perf/probe.hpp"
#include "mmr/perf/report.hpp"

namespace mmr {
namespace {

struct PerfBenchArgs {
  std::string out = "BENCH_perf.json";
  std::string mode = "quick";  // quick | full | smoke
  std::vector<std::string> arbiters = {"coa", "coa-scan", "wfa", "islip"};
  std::vector<std::uint32_t> ports = {4, 8};
  std::vector<std::uint32_t> micro_ports = {4, 8, 16, 32, 64, 128};
  std::size_t threads = 0;
  std::vector<std::pair<std::string, std::string>> aliases;
};

PerfBenchArgs parse(int argc, char** argv) {
  PerfBenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = eq == std::string::npos ? arg : arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "out") {
      args.out = value;
    } else if (key == "mode") {
      args.mode = value;
    } else if (key == "arbiters") {
      args.arbiters = bench::split(value, ',');
    } else if (key == "ports") {
      args.ports.clear();
      for (const std::string& part : bench::split(value, ',')) {
        args.ports.push_back(
            static_cast<std::uint32_t>(std::stoul(part)));
      }
    } else if (key == "micro_ports") {
      args.micro_ports.clear();
      for (const std::string& part : bench::split(value, ',')) {
        args.micro_ports.push_back(
            static_cast<std::uint32_t>(std::stoul(part)));
      }
    } else if (key == "threads") {
      args.threads = std::stoul(value);
    } else if (key == "alias") {
      for (const std::string& pair : bench::split(value, ',')) {
        const auto colon = pair.find(':');
        if (colon == std::string::npos) {
          std::cerr << "alias wants FROM:TO[,FROM:TO...], got '" << value
                    << "'\n";
          std::exit(2);
        }
        args.aliases.emplace_back(pair.substr(0, colon),
                                  pair.substr(colon + 1));
      }
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      std::exit(2);
    }
  }
  if (args.mode != "quick" && args.mode != "full" && args.mode != "smoke") {
    std::cerr << "mode must be quick|full|smoke, got '" << args.mode << "'\n";
    std::exit(2);
  }
  return args;
}

struct RunScale {
  Cycle warmup;
  Cycle measure;
  std::uint64_t micro_iterations;
  std::vector<double> sweep_loads;
};

RunScale scale_for(const std::string& mode) {
  if (mode == "smoke") return {1'000, 4'000, 2'000, {0.3, 0.6}};
  if (mode == "full") return {20'000, 200'000, 200'000, {0.2, 0.4, 0.6, 0.8}};
  return {2'000, 40'000, 50'000, {0.3, 0.5, 0.7}};  // quick
}

std::string labeled(const PerfBenchArgs& args, const std::string& arbiter) {
  for (const auto& [from, to] : args.aliases) {
    if (arbiter == from) return to;
  }
  return arbiter;
}

SimConfig sim_config(std::uint32_t ports, const std::string& arbiter,
                     const RunScale& scale) {
  SimConfig config;
  config.ports = ports;
  config.vcs_per_link = 64;
  config.arbiter = arbiter;
  config.warmup_cycles = scale.warmup;
  config.measure_cycles = scale.measure;
  return config;
}

Workload cbr_workload(const SimConfig& config) {
  Rng rng(config.seed, 1);
  CbrMixSpec spec;
  spec.target_load = 0.6;
  spec.classes = {kCbrHigh, kCbrMedium};
  spec.class_weights = {3.0, 1.0};
  return build_cbr_mix(config, spec, rng);
}

perf::PerfRecord sim_cbr_record(const PerfBenchArgs& args,
                                const std::string& arbiter,
                                std::uint32_t ports, const RunScale& scale) {
  perf::PerfRecord record;
  record.kind = "sim-cbr";
  record.arbiter = labeled(args, arbiter);
  record.ports = ports;
  record.label =
      "sim-cbr/" + record.arbiter + "/p" + std::to_string(ports);

  const SimConfig config = sim_config(ports, arbiter, scale);
  MmrSimulation simulation(config, cbr_workload(config));
  const perf::ProbeScope arm(&record.probe);
  const std::uint64_t start = perf::now_ns();
  (void)simulation.run();
  record.probe.add_run(config.total_cycles(), perf::now_ns() - start);
  return record;
}

perf::PerfRecord micro_record(const PerfBenchArgs& args,
                              const std::string& arbiter,
                              std::uint32_t ports, const RunScale& scale) {
  perf::PerfRecord record;
  record.kind = "arbitrate-micro";
  record.arbiter = labeled(args, arbiter);
  record.ports = ports;
  record.label =
      "arb-micro/" + record.arbiter + "/p" + std::to_string(ports);

  // A rotation of pre-generated candidate sets (uniform + hotspot) keeps
  // the loop on arbitration itself, not set construction.
  audit::GeneratorOptions opt;
  opt.ports = ports;
  opt.levels = 2;
  Rng gen(0xBE7C, ports);
  std::vector<CandidateSet> sets;
  for (const audit::LoadProfile profile :
       {audit::LoadProfile::kUniform, audit::LoadProfile::kHotspot}) {
    opt.profile = profile;
    for (int i = 0; i < 16; ++i) {
      CandidateSet set(ports, opt.levels);
      for (const Candidate& c : audit::generate_step(gen, opt)) set.add(c);
      sets.push_back(std::move(set));
    }
  }

  const std::unique_ptr<SwitchArbiter> arbiter_impl =
      make_arbiter(arbiter, ports, Rng(0xA1B2, ports));
  Matching matching(ports);
  const perf::ProbeScope arm(&record.probe);
  const std::uint64_t start = perf::now_ns();
  for (std::uint64_t i = 0; i < scale.micro_iterations; ++i) {
    arbiter_impl->arbitrate_into(sets[i % sets.size()], matching);
  }
  const std::uint64_t wall = perf::now_ns() - start;
  record.probe.add_time(perf::Phase::kArbitration, wall);
  // "Cycles" for the micro section are arbitrations.
  record.probe.add_run(scale.micro_iterations, wall);
  return record;
}

perf::PerfRecord sweep_record(const PerfBenchArgs& args,
                              const std::string& arbiter,
                              const RunScale& scale) {
  perf::PerfRecord record;
  record.kind = "sweep-cbr";
  record.arbiter = labeled(args, arbiter);
  record.ports = 4;
  record.label = "sweep-cbr/" + record.arbiter;

  SweepSpec spec;
  spec.base = sim_config(record.ports, arbiter, scale);
  // The sweep section measures driver overhead too; shorter points suffice.
  spec.base.warmup_cycles = scale.warmup / 2;
  spec.base.measure_cycles = scale.measure / 4;
  spec.loads = scale.sweep_loads;
  spec.arbiters = {arbiter};
  spec.threads = args.threads;
  spec.cbr.classes = {kCbrHigh, kCbrMedium};
  spec.cbr.class_weights = {3.0, 1.0};

  const std::uint64_t start = perf::now_ns();
  const std::vector<SweepPoint> points = run_sweep(spec);
  const std::uint64_t wall = perf::now_ns() - start;
  record.probe.add_run(
      static_cast<std::uint64_t>(points.size()) * spec.base.total_cycles(),
      wall);
  return record;
}

}  // namespace
}  // namespace mmr

int main(int argc, char** argv) {
  using namespace mmr;
  const PerfBenchArgs args = parse(argc, argv);
  const RunScale scale = scale_for(args.mode);

  std::cout << "==== perf baseline (" << args.mode << ") ====\n";

  std::vector<perf::PerfRecord> records;
  for (const std::string& arbiter : args.arbiters) {
    for (const std::uint32_t ports : args.ports) {
      records.push_back(sim_cbr_record(args, arbiter, ports, scale));
      std::cout << perf::render_phase_summary(records.back()) << "\n";
    }
    for (const std::uint32_t ports : args.micro_ports) {
      records.push_back(micro_record(args, arbiter, ports, scale));
      std::cout << perf::render_phase_summary(records.back()) << "\n";
    }
    records.push_back(sweep_record(args, arbiter, scale));
    std::cout << perf::render_phase_summary(records.back()) << "\n";
  }

  perf::PerfReportMeta meta;
  meta.mode = args.mode;
  meta.threads = args.threads;
  std::ofstream out(args.out);
  if (!out) {
    std::cerr << "cannot open '" << args.out << "' for writing\n";
    return 1;
  }
  perf::write_perf_json(out, meta, records);
  std::cout << "wrote " << records.size() << " records to " << args.out
            << "\n";
  if (!perf::kCompiledIn) {
    std::cout << "note: built with MMR_PERF=OFF -- phase shares and "
                 "allocation counters are all zero\n";
  }
  return 0;
}
