// Figure 6: the bit-rate profile of a typical MPEG-2 sequence over time
// (the paper shows Flower Garden).  Prints per-frame instantaneous rate
// (Mbit/s) for a few GOPs plus an ASCII sparkline of the I/P/B structure.

#include <cstdio>
#include <iostream>
#include <string>

#include "mmr/sim/csv.hpp"
#include "mmr/sim/rng.hpp"
#include "mmr/traffic/mpeg.hpp"

int main(int argc, char** argv) {
  using namespace mmr;
  std::string sequence = "Flower Garden";
  std::uint32_t gops = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("sequence=", 0) == 0) sequence = arg.substr(9);
    if (arg.rfind("gops=", 0) == 0) gops = static_cast<std::uint32_t>(std::stoul(arg.substr(5)));
  }

  Rng rng(0x5EED, 0xF16);
  const MpegTrace trace =
      generate_mpeg_trace(mpeg_sequence(sequence), gops, rng);

  std::cout << "==== Figure 6: " << sequence
            << " sequence — instantaneous rate per frame ====\n";
  std::cout << "mean " << trace.mean_bps() / 1e6 << " Mbps, peak "
            << trace.peak_bps() / 1e6 << " Mbps\n\n";

  // Sparkline: one column per frame, height proportional to rate.
  const double peak = trace.peak_bps();
  constexpr int kRows = 12;
  for (int row = kRows; row >= 1; --row) {
    std::printf("%6.1f | ",
                peak / 1e6 * static_cast<double>(row) / kRows);
    for (std::uint32_t f = 0; f < trace.frames(); ++f) {
      const double rate = static_cast<double>(trace.frame_bits[f]) /
                          kFramePeriodSeconds;
      std::putchar(rate >= peak * (row - 0.5) / kRows ? '#' : ' ');
    }
    std::putchar('\n');
  }
  std::printf("Mbps   +");
  for (std::uint32_t f = 0; f < trace.frames(); ++f) std::putchar('-');
  std::printf("\n        ");
  for (std::uint32_t f = 0; f < trace.frames(); ++f)
    std::putchar(to_string(trace.frame_type(f))[0]);
  std::printf("   (frame types; %u ms per frame)\n\n",
              static_cast<unsigned>(kFramePeriodSeconds * 1e3));

  std::cout << "--- CSV ---\n";
  CsvWriter csv(std::cout, {"frame", "time_ms", "type", "bits", "mbps"});
  for (std::uint32_t f = 0; f < trace.frames(); ++f) {
    csv.row({std::to_string(f),
             std::to_string(f * kFramePeriodSeconds * 1e3),
             to_string(trace.frame_type(f)),
             std::to_string(trace.frame_bits[f]),
             std::to_string(static_cast<double>(trace.frame_bits[f]) /
                            kFramePeriodSeconds / 1e6)});
  }
  std::cout << "--- end CSV ---\n";
  return 0;
}
