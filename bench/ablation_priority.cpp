// Ablation: the priority biasing function (Section 3.1).  SIABP is the
// hardware-friendly shift-based approximation of IABP; fifo-age ignores
// bandwidth needs, static ignores waiting time.  Run with the COA (which
// consumes the priorities) at a demanding load.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mmr;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.loads.empty()) args.loads = {0.60, 0.75, 0.85};
  const std::vector<PriorityScheme> schemes = {
      PriorityScheme::kSiabp, PriorityScheme::kIabp, PriorityScheme::kFifoAge,
      PriorityScheme::kStatic};

  std::cout << "==== Ablation: link-scheduler priority biasing functions "
               "====\n(arbiter: coa; IABP needs a hardware divider, SIABP "
               "only a shifter — the paper\nreports 10x area and 38x delay "
               "reduction with equal QoS)\n\n";

  std::vector<std::string> header = {"load %"};
  for (PriorityScheme scheme : schemes)
    header.emplace_back(to_string(scheme));
  AsciiTable delay55(header);
  AsciiTable delay64k(header);
  AsciiTable delivered(header);

  std::vector<std::vector<SweepPoint>> results;
  for (PriorityScheme scheme : schemes) {
    SweepSpec spec;
    spec.kind = WorkloadKind::kCbr;
    spec.loads = args.loads;
    spec.arbiters = {"coa"};
    spec.threads = args.threads;
    spec.replications = args.full ? 4 : 2;
    bench::apply_run_scale(spec.base, args, /*quick=*/120'000,
                           /*full=*/600'000);
    spec.base.priority_scheme = scheme;
    results.push_back(run_sweep(spec));
  }
  const auto delay_of = [](const SimulationMetrics& m, const char* label) {
    const ClassMetrics* cls = m.find_class(label);
    return cls == nullptr || cls->flit_delay_us.empty()
               ? std::numeric_limits<double>::quiet_NaN()
               : cls->flit_delay_us.mean();
  };
  for (std::size_t li = 0; li < args.loads.size(); ++li) {
    std::vector<std::string> row55 = {AsciiTable::num(args.loads[li] * 100, 0)};
    std::vector<std::string> row64 = row55;
    std::vector<std::string> rowd = row55;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const SimulationMetrics& m = results[s][li].metrics;
      row55.push_back(AsciiTable::num(delay_of(m, "CBR 55 Mbps"), 1));
      row64.push_back(AsciiTable::num(delay_of(m, "CBR 64 Kbps"), 1));
      rowd.push_back(AsciiTable::num(m.delivered_load * 100, 1));
    }
    delay55.add_row(std::move(row55));
    delay64k.add_row(std::move(row64));
    delivered.add_row(std::move(rowd));
  }
  std::cout << "mean flit delay, CBR 55 Mbps class (us)\n" << delay55.render();
  std::cout << "mean flit delay, CBR 64 Kbps class (us)\n" << delay64k.render();
  std::cout << "delivered load (%)\n" << delivered.render();
  std::cout << "\nExpected: siabp tracks iabp closely (the paper's point); "
               "fifo-age neglects\nhigh-bandwidth connections; static "
               "neglects waiting flits.\n";
  return 0;
}
