// Hardware cost analysis (the paper's future work, Section 6): first-order
// area (gate equivalents) and delay (gate delays) of every switch scheduler
// vs port count, plus the Section 3.1 SIABP-vs-IABP link-scheduler
// comparison the paper quantified by VHDL synthesis (~10x area, ~38x delay).

#include <iostream>

#include "mmr/arbiter/factory.hpp"
#include "mmr/arbiter/hardware_model.hpp"
#include "mmr/sim/table.hpp"

int main() {
  using namespace mmr;
  constexpr std::uint32_t kLevels = 4;
  constexpr std::uint32_t kPriorityBits = 16;
  const std::vector<std::uint32_t> port_counts = {4, 8, 16, 32};

  std::cout << "==== Switch scheduler hardware cost (structural model) "
               "====\n"
            << kLevels << " candidate levels, " << kPriorityBits
            << "-bit priorities; area in 2-input gate equivalents (GE), "
               "delay in gate delays\n\n";

  AsciiTable area({"arbiter", "4x4 GE", "8x8 GE", "16x16 GE", "32x32 GE"});
  AsciiTable delay({"arbiter", "4x4", "8x8", "16x16", "32x32"});
  for (const std::string& name : arbiter_names()) {
    std::vector<std::string> area_row = {name};
    std::vector<std::string> delay_row = {name};
    for (std::uint32_t ports : port_counts) {
      const HardwareEstimate estimate =
          estimate_arbiter(name, ports, kLevels, kPriorityBits);
      if (!estimate.line_rate_feasible) {
        area_row.emplace_back("(oracle)");
        delay_row.emplace_back("(oracle)");
      } else {
        area_row.push_back(AsciiTable::num(estimate.gate_equivalents, 0));
        delay_row.push_back(AsciiTable::num(estimate.critical_path_gates, 0));
      }
    }
    area.add_row(std::move(area_row));
    delay.add_row(std::move(delay_row));
  }
  std::cout << "Area:\n" << area.render();
  std::cout << "Critical path (per arbitration):\n" << delay.render() << '\n';

  std::cout << "==== Link-scheduler priority biasing (per VC) ====\n";
  AsciiTable bias({"scheme", "area (GE)", "delay (gates)", "vs SIABP area",
                   "vs SIABP delay"});
  const HardwareEstimate siabp =
      estimate_priority_logic(PriorityScheme::kSiabp, 20, kPriorityBits);
  for (PriorityScheme scheme :
       {PriorityScheme::kSiabp, PriorityScheme::kIabp,
        PriorityScheme::kFifoAge, PriorityScheme::kStatic}) {
    const HardwareEstimate estimate =
        estimate_priority_logic(scheme, 20, kPriorityBits);
    bias.add_row({to_string(scheme),
                  AsciiTable::num(estimate.gate_equivalents, 0),
                  AsciiTable::num(estimate.critical_path_gates, 1),
                  AsciiTable::num(
                      estimate.gate_equivalents / siabp.gate_equivalents, 1),
                  AsciiTable::num(estimate.critical_path_gates /
                                      siabp.critical_path_gates,
                                  1)});
  }
  std::cout << bias.render();
  std::cout << "\nPaper reference (Section 3.1, VHDL synthesis): replacing "
               "IABP's divider with\nSIABP's shifter reduced silicon area "
               "~10x and delay ~38x at equal QoS.\n";
  return 0;
}
