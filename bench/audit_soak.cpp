// Differential audit soak: every registered arbiter x every load profile x
// many seeds, invariants checked on every arbitration (validity,
// maximality / exact-maximum vs the Hopcroft-Karp oracle, iteration bounds,
// COA/greedy priority ordering, iSLIP/WFA/WWFA rotation fairness).  Any
// failure is shrunk and dumped as a replayable spec.  `twins` additionally
// replays every (optimised, reference) pair from arbiter_twin_pairs() over
// the same case corpus and demands bit-identical grants.  `ports` accepts a
// comma-separated list; the invariant audit and the twin diff run at every
// listed width.  Exit status 0 only on a clean soak, so scripts/check.sh and
// CI can gate on it.

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "mmr/audit/harness.hpp"
#include "mmr/snapshot/signals.hpp"

namespace {

std::vector<std::uint32_t> parse_ports_list(const std::string& text) {
  std::vector<std::uint32_t> ports;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty())
      ports.push_back(static_cast<std::uint32_t>(std::stoul(item)));
  }
  return ports;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmr::audit;
  AuditOptions options;
  options.seeds = 1000;
  std::vector<std::uint32_t> ports_list = {4};
  bool twins = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eat = [&](const char* key) -> const char* {
      const std::string prefix = std::string(key) + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                       : nullptr;
    };
    const char* v = nullptr;
    if ((v = eat("seeds")) != nullptr) {
      options.seeds = static_cast<std::uint32_t>(std::stoul(v));
    } else if ((v = eat("ports")) != nullptr) {
      ports_list = parse_ports_list(v);
      if (ports_list.empty()) {
        std::cerr << "ports= needs a comma-separated list of widths\n";
        return 2;
      }
    } else if ((v = eat("levels")) != nullptr) {
      options.levels = static_cast<std::uint32_t>(std::stoul(v));
    } else if ((v = eat("steps")) != nullptr) {
      options.steps = static_cast<std::uint32_t>(std::stoul(v));
    } else if ((v = eat("seed_base")) != nullptr) {
      options.seed_base = std::stoull(v);
    } else if ((v = eat("arbiter")) != nullptr) {
      options.arbiters.push_back(v);
    } else if (arg == "twins") {
      twins = true;
    } else {
      std::cerr << "usage: audit_soak [seeds=N] [ports=N[,N...]] [levels=N] "
                   "[steps=N] [seed_base=N] [arbiter=name ...] [twins]\n";
      return 2;
    }
  }

  std::ostringstream ports_text;
  for (std::size_t i = 0; i < ports_list.size(); ++i)
    ports_text << (i == 0 ? "" : ",") << ports_list[i];

  std::cout << "==== Differential arbiter audit soak ====\n"
            << "seeds per (arbiter, profile): " << options.seeds
            << ", ports: " << ports_text.str()
            << ", levels: " << options.levels
            << ", steps per case: " << options.steps
            << (twins ? ", twin bit-identity diff: on" : "") << "\n\n";

  // SIGINT/SIGTERM stop the soak at the next ports-width boundary with the
  // partial report flushed and the conventional 128+signo exit status.
  mmr::snapshot::SignalGuard signals;
  const auto interrupted = [](int sig) {
    std::cout << "soak interrupted by signal " << sig
              << "; partial report above\n";
    return mmr::snapshot::exit_status_for_signal(sig);
  };

  bool clean = true;
  for (const std::uint32_t ports : ports_list) {
    if (const int sig = mmr::snapshot::SignalGuard::consume())
      return interrupted(sig);
    options.ports = ports;
    const AuditReport report = run_audit(options);
    std::cout << "[ports=" << ports << "] " << report.summary();
    if (!report.clean()) {
      clean = false;
      std::cout << "\nsoak FAILED at ports=" << ports
                << ": replay a dumped spec with mmr::audit::parse_case + "
                   "run_case\n";
    }
  }

  if (twins) {
    if (const int sig = mmr::snapshot::SignalGuard::consume())
      return interrupted(sig);
    TwinDiffOptions diff;
    diff.seed_base = options.seed_base;
    diff.seeds = options.seeds;
    diff.ports = ports_list;
    diff.levels = options.levels;
    diff.steps = options.steps;
    const TwinDiffReport report = run_twin_diff(diff);
    std::cout << report.summary();
    if (!report.clean()) {
      clean = false;
      std::cout << "\ntwin diff FAILED: the optimised engine diverges from "
                   "its reference twin\n";
    }
  }

  if (!clean) return 1;
  std::cout << "soak clean\n";
  return 0;
}
