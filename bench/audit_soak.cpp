// Differential audit soak: every registered arbiter x every load profile x
// many seeds, invariants checked on every arbitration (validity,
// maximality / exact-maximum vs the Hopcroft-Karp oracle, iteration bounds,
// COA/greedy priority ordering, iSLIP/WWFA rotation fairness).  Any failure
// is shrunk and dumped as a replayable spec.  Exit status 0 only on a clean
// soak, so scripts/check.sh and CI can gate on it.

#include <iostream>
#include <string>

#include "mmr/audit/harness.hpp"

int main(int argc, char** argv) {
  using namespace mmr::audit;
  AuditOptions options;
  options.seeds = 1000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eat = [&](const char* key) -> const char* {
      const std::string prefix = std::string(key) + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                       : nullptr;
    };
    const char* v = nullptr;
    if ((v = eat("seeds")) != nullptr) {
      options.seeds = static_cast<std::uint32_t>(std::stoul(v));
    } else if ((v = eat("ports")) != nullptr) {
      options.ports = static_cast<std::uint32_t>(std::stoul(v));
    } else if ((v = eat("levels")) != nullptr) {
      options.levels = static_cast<std::uint32_t>(std::stoul(v));
    } else if ((v = eat("steps")) != nullptr) {
      options.steps = static_cast<std::uint32_t>(std::stoul(v));
    } else if ((v = eat("seed_base")) != nullptr) {
      options.seed_base = std::stoull(v);
    } else if ((v = eat("arbiter")) != nullptr) {
      options.arbiters.push_back(v);
    } else {
      std::cerr << "usage: audit_soak [seeds=N] [ports=N] [levels=N] "
                   "[steps=N] [seed_base=N] [arbiter=name ...]\n";
      return 2;
    }
  }

  std::cout << "==== Differential arbiter audit soak ====\n"
            << "seeds per (arbiter, profile): " << options.seeds
            << ", ports: " << options.ports << ", levels: " << options.levels
            << ", steps per case: " << options.steps << "\n\n";

  const AuditReport report = run_audit(options);
  std::cout << report.summary();
  if (!report.clean()) {
    std::cout << "\nsoak FAILED: replay a dumped spec with "
                 "mmr::audit::parse_case + run_case\n";
    return 1;
  }
  std::cout << "soak clean\n";
  return 0;
}
