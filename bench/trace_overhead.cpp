// Trace-layer overhead: runs one golden-seed CBR workload three times —
// untraced, stream-traced, flight-traced — and reports wall time, event
// volume, and the relative slowdown of arming a tracer.  Also the tier-2
// smoke producer: `out=PATH` writes the stream run's mmr-trace-v1 JSONL for
// scripts/trace_lint.py.
//
// Usage: trace_overhead [out=PATH] [key=value SimConfig overrides...]

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "mmr/core/simulation.hpp"
#include "mmr/sim/table.hpp"
#include "mmr/trace/export.hpp"
#include "mmr/trace/tracer.hpp"

namespace {

struct Run {
  std::string label;
  mmr::SimulationMetrics metrics;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
};

Run run_once(const std::string& label, const mmr::SimConfig& config,
             mmr::trace::Tracer* tracer) {
  mmr::Rng rng(config.seed, 1);
  mmr::CbrMixSpec spec;
  spec.target_load = 0.6;
  spec.classes = {mmr::kCbrHigh, mmr::kCbrMedium};
  spec.class_weights = {3.0, 1.0};
  mmr::MmrSimulation simulation(config,
                                mmr::build_cbr_mix(config, spec, rng));
  const mmr::trace::TraceScope arm(tracer);
  const auto begin = std::chrono::steady_clock::now();
  Run run;
  run.metrics = simulation.run();
  const auto end = std::chrono::steady_clock::now();
  run.label = label;
  run.wall_seconds = std::chrono::duration<double>(end - begin).count();
  run.events = tracer != nullptr ? tracer->emitted() : 0;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  mmr::SimConfig config;
  config.ports = 4;
  config.vcs_per_link = 64;
  config.warmup_cycles = 5'000;
  config.measure_cycles = 50'000;
  config.arbiter = "coa";

  std::string out_path;
  std::vector<std::string> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("out=", 0) == 0) {
      out_path = arg.substr(4);
    } else {
      overrides.push_back(arg);
    }
  }
  mmr::apply_overrides(config, overrides);
  config.validate();

  std::cout << "==== trace overhead (" << config.ports << "x" << config.ports
            << ", " << config.vcs_per_link << " VCs, "
            << config.total_cycles() << " cycles, arbiter "
            << config.arbiter << ") ====\n";
  if (!mmr::trace::kCompiledIn)
    std::cout << "note: tracing compiled out (-DMMR_TRACE=OFF); the traced "
                 "runs measure the disabled-macro path\n";

  const mmr::trace::TraceMeta meta = mmr::trace::TraceMeta::from_config(config);
  mmr::trace::Tracer stream(
      mmr::trace::TraceSpec::parse("stream,limit:50000000"), meta);
  mmr::trace::Tracer flight(mmr::trace::TraceSpec::parse("flight,ring:4096"),
                            meta);

  std::vector<Run> runs;
  runs.push_back(run_once("untraced", config, nullptr));
  runs.push_back(run_once("stream", config, &stream));
  runs.push_back(run_once("flight", config, &flight));

  // Tracing must never perturb results; a mismatch here is a bug, not noise.
  for (const Run& run : runs) {
    if (run.metrics.flits_delivered != runs.front().metrics.flits_delivered ||
        run.metrics.flit_delay_us.mean() !=
            runs.front().metrics.flit_delay_us.mean()) {
      std::cerr << "FAIL: " << run.label
                << " run diverged from the untraced run\n";
      return 1;
    }
  }

  const double cycles = static_cast<double>(config.total_cycles());
  const double base = runs.front().wall_seconds;
  mmr::AsciiTable table(
      {"mode", "wall ms", "Mcycles/s", "events", "events/cycle",
       "overhead"});
  for (const Run& run : runs) {
    char cell[64];
    std::vector<std::string> row = {run.label};
    std::snprintf(cell, sizeof cell, "%.1f", run.wall_seconds * 1e3);
    row.emplace_back(cell);
    std::snprintf(cell, sizeof cell, "%.2f",
                  cycles / run.wall_seconds / 1e6);
    row.emplace_back(cell);
    row.push_back(std::to_string(run.events));
    std::snprintf(cell, sizeof cell, "%.2f",
                  static_cast<double>(run.events) / cycles);
    row.emplace_back(cell);
    std::snprintf(cell, sizeof cell, "%+.1f%%",
                  (run.wall_seconds / base - 1.0) * 100.0);
    row.emplace_back(cell);
    table.add_row(std::move(row));
  }
  std::cout << table.render();

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "FAIL: cannot open " << out_path << "\n";
      return 1;
    }
    stream.export_jsonl(out, "end");
    std::cout << "wrote " << stream.emitted() - stream.truncated()
              << " events to " << out_path << "\n";
  }
  return 0;
}
