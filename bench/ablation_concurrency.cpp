// Ablation: the VBR admission concurrency factor (Section 2).  "The
// concurrency factor is a trade-off between the ability to make QoS
// guarantees, the number of connections that can be concurrently serviced,
// and link utilization."  With admission ENFORCED, we offer more VBR load
// than fits and let the CAC decide: a small factor admits few connections
// (strong guarantees, low utilization); a large factor admits many
// (utilization up, QoS softer under coincident peaks).

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mmr;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::vector<double> factors = {1.0, 1.5, 2.0, 3.0, 5.0};
  const double offered = 1.2;  // more than admission can ever accept

  SimConfig base;
  base.arbiter = args.arbiters.front();
  bench::apply_run_scale(base, args, /*quick=*/250'000, /*full=*/1'000'000);

  std::cout << "==== Ablation: VBR admission concurrency factor ====\n"
            << "offered " << offered * 100 << "% VBR per link, admission "
            << "enforced, SR injection, arbiter " << base.arbiter << "\n\n";

  AsciiTable table({"factor", "admitted conns", "admitted load %",
                    "delivered %", "frame delay us", "p99 frame us",
                    "mean jitter us"});
  for (double factor : factors) {
    SimConfig config = base;
    config.concurrency_factor = factor;
    Rng rng(config.seed, 0xCF);
    VbrMixSpec spec;
    spec.target_load = offered;
    spec.trace_gops = 8;
    spec.enforce_admission = true;
    Workload workload = build_vbr_mix(config, spec, rng);
    const std::size_t connections = workload.connections();
    const double admitted_load =
        workload.generated_load(config.time_base());
    MmrSimulation simulation(config, std::move(workload));
    const SimulationMetrics metrics = simulation.run();
    table.add_row(
        {AsciiTable::num(factor, 1), std::to_string(connections),
         AsciiTable::num(admitted_load * 100, 1),
         AsciiTable::num(metrics.delivered_load * 100, 1),
         AsciiTable::num(metrics.frame_delay_us.mean(), 1),
         AsciiTable::num(metrics.frame_delay_hist.p99(), 1),
         AsciiTable::num(metrics.frame_jitter_us.mean(), 2)});
  }
  std::cout << table.render();
  std::cout << "\nExpected shape: admitted connections and utilization grow "
               "with the factor\n(rule (b) loosens) until the average-rate "
               "rule (a) binds; frame delay and\njitter grow as coincident "
               "peaks start to exceed the round.\n";
  return 0;
}
