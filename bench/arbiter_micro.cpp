// Microbenchmarks (google-benchmark): cost of one arbitration per algorithm
// vs port count — the "at router switching speed" constraint of Section 3.2.
// Run with --benchmark_filter=... as usual.

#include <benchmark/benchmark.h>

#include "mmr/arbiter/candidate.hpp"
#include "mmr/arbiter/factory.hpp"
#include "mmr/sim/rng.hpp"

namespace {

mmr::CandidateSet make_candidates(std::uint32_t ports, std::uint32_t levels,
                                  double density, mmr::Rng& rng) {
  mmr::CandidateSet set(ports, levels);
  for (std::uint32_t input = 0; input < ports; ++input) {
    mmr::Priority prev = ~mmr::Priority{0};
    for (std::uint32_t level = 0; level < levels; ++level) {
      if (!rng.chance(density)) break;
      mmr::Candidate c;
      c.input = static_cast<std::uint16_t>(input);
      c.output = static_cast<std::uint16_t>(rng.uniform(ports));
      c.level = static_cast<std::uint8_t>(level);
      c.vc = level;
      c.priority = std::min<mmr::Priority>(prev, 1 + rng.uniform(1u << 20));
      prev = c.priority;
      set.add(c);
    }
  }
  return set;
}

void BM_Arbitrate(benchmark::State& state, const std::string& name) {
  const auto ports = static_cast<std::uint32_t>(state.range(0));
  mmr::Rng rng(0x5EED, ports);
  auto arbiter = mmr::make_arbiter(name, ports, mmr::Rng(0x5EED, 0xB2));

  // A rotating pool of pre-built candidate sets keeps generation cost out
  // of the measured loop while avoiding a single memoised input.
  std::vector<mmr::CandidateSet> pool;
  for (int i = 0; i < 32; ++i)
    pool.push_back(make_candidates(ports, 4, 0.9, rng));

  std::size_t i = 0;
  std::uint64_t matched = 0;
  for (auto _ : state) {
    const mmr::Matching matching = arbiter->arbitrate(pool[i]);
    matched += matching.size();
    benchmark::DoNotOptimize(matched);
    i = (i + 1) % pool.size();
  }
  state.counters["matched/cycle"] = benchmark::Counter(
      static_cast<double>(matched),
      benchmark::Counter::kIsIterationInvariantRate);
}

void register_benchmarks() {
  for (const std::string& name : mmr::arbiter_names()) {
    auto* bench = benchmark::RegisterBenchmark(
        ("arbitrate/" + name).c_str(),
        [name](benchmark::State& state) { BM_Arbitrate(state, name); });
    bench->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
