// Figure 8: average crossbar utilization vs generated load for VBR (MPEG-2)
// traffic, under both injection models (SR left, BB right), COA vs WFA.
//
// Paper result: with WFA, utilization degrades (falls below the generated
// load) from about 75%; with COA the saturation point moves to about 85%.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mmr;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.loads.empty()) {
    args.loads = args.full ? std::vector<double>{0.40, 0.50, 0.60, 0.70, 0.75,
                                                 0.80, 0.85, 0.90}
                           : std::vector<double>{0.50, 0.65, 0.75, 0.85, 0.90};
  }

  for (const InjectionModel model :
       {InjectionModel::kSmoothRate, InjectionModel::kBackToBack}) {
    SweepSpec spec;
    spec.kind = WorkloadKind::kVbr;
    spec.loads = args.loads;
    spec.arbiters = args.arbiters;
    spec.threads = args.threads;
    spec.vbr.model = model;
    spec.vbr.trace_gops = 8;
    spec.replications = args.full ? 4 : 2;
    // ~4 GOP times at paper scale (the paper forwards 4 GOPs/connection).
    bench::apply_run_scale(spec.base, args, /*quick=*/300'000,
                           /*full=*/1'600'000);

    bench::print_header(
        std::string("Figure 8: VBR average crossbar utilization, ") +
            to_string(model) + " injection model",
        spec, args.full);
    const std::vector<SweepPoint> points = run_sweep(spec);

    std::cout << "Average crossbar utilization (%) vs generated load\n";
    std::cout << sweep_table(points, crossbar_utilization_pct(), 1).render()
              << '\n';
    print_saturation_summary(std::cout, points, spec.arbiters);

    bench::print_csv_block(
        points, {{"utilization_pct", crossbar_utilization_pct()},
                 {"delivered_pct", delivered_load_pct()},
                 {"generated_pct", generated_load_pct()},
                 {"frame_delay_us", frame_delay_us()}});
    std::cout << '\n';
  }
  return 0;
}
