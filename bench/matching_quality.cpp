// Section 4 context: WFA "achieves nearly the same performance as complex
// theoretical schemes" on matching size, and beats PIM-class schemes.  This
// bench measures mean matching size (fraction of the true maximum matching,
// computed by Hopcroft-Karp) for every arbiter over random request
// ensembles of varying density and port count.

#include <iostream>

#include "mmr/arbiter/factory.hpp"
#include "mmr/arbiter/maxmatch.hpp"
#include "mmr/arbiter/verify.hpp"
#include "mmr/sim/rng.hpp"
#include "mmr/sim/stats.hpp"
#include "mmr/sim/table.hpp"

namespace {

/// Random candidate set: each input contributes `levels` candidates with
/// distinct VCs; outputs drawn uniformly; priorities random.
mmr::CandidateSet random_candidates(std::uint32_t ports, std::uint32_t levels,
                                    double request_probability,
                                    mmr::Rng& rng) {
  mmr::CandidateSet set(ports, levels);
  for (std::uint32_t input = 0; input < ports; ++input) {
    mmr::Priority prev = ~mmr::Priority{0};
    for (std::uint32_t level = 0; level < levels; ++level) {
      if (!rng.chance(request_probability)) break;  // levels are contiguous
      mmr::Candidate c;
      c.input = static_cast<std::uint16_t>(input);
      c.output = static_cast<std::uint16_t>(rng.uniform(ports));
      c.level = static_cast<std::uint8_t>(level);
      c.vc = level;
      c.priority = std::min<mmr::Priority>(prev, 1 + rng.uniform(1u << 20));
      prev = c.priority;
      set.add(c);
    }
  }
  return set;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmr;
  std::uint32_t trials = 2000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("trials=", 0) == 0) trials = static_cast<std::uint32_t>(std::stoul(arg.substr(7)));
  }

  std::cout << "==== Matching quality: mean matching size / maximum matching "
               "====\n"
            << trials << " random candidate sets per cell; 4 candidate "
               "levels; request density 0.9 per level\n"
            << "cells are mean +/- sample stddev of the per-trial ratio\n\n";

  const std::vector<std::uint32_t> port_counts = {4, 8, 16};
  std::vector<std::string> header = {"arbiter"};
  for (std::uint32_t ports : port_counts)
    header.push_back(std::to_string(ports) + "x" + std::to_string(ports));
  AsciiTable table(header);

  for (const std::string& name : arbiter_names()) {
    std::vector<std::string> row = {name};
    for (std::uint32_t ports : port_counts) {
      Rng workload_rng(0x5EED, ports);  // same ensembles for every arbiter
      auto arbiter = make_arbiter(name, ports, Rng(0x5EED, 0xA1));
      StreamingStats ratio;
      MaxMatchArbiter oracle(ports);
      for (std::uint32_t t = 0; t < trials; ++t) {
        const CandidateSet set =
            random_candidates(ports, 4, 0.9, workload_rng);
        if (set.empty()) continue;
        const Matching matching = arbiter->arbitrate(set);
        const MatchingCheck check = check_matching(set, matching);
        if (!check.valid) {
          std::cerr << "INVALID matching from " << name << ": "
                    << check.problem << '\n';
          return 1;
        }
        const Matching best = oracle.arbitrate(set);
        if (best.size() == 0) continue;
        ratio.add(static_cast<double>(matching.size()) /
                  static_cast<double>(best.size()));
      }
      // The trials sample an infinite ensemble, so spread uses the sample
      // (n-1) convention.
      row.push_back(AsciiTable::num(ratio.mean(), 4) + " +/- " +
                    AsciiTable::num(ratio.sample_stddev(), 3));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.render();
  std::cout << "\nExpected ordering (paper Section 4): wfa/wwfa ~ maximal "
               "(close to 1.0), above\nsingle-iteration pim1/islip1; coa is "
               "priority-aware yet stays near-maximal.\n";
  return 0;
}
