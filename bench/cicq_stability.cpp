// CICQ burst stability: Gunther's instability and its credit-protocol fix.
//
// Bursty MPEG-2 VBR traffic (Back-to-Back injection: every frame poured out
// at link rate) runs through three queue disciplines from the same fixed
// seed, with the credit return latency raised so the crosspoint round-trip
// is clearly visible:
//
//   vc       the paper's per-VC discipline — the reference for what this
//            load can deliver
//   stab:0   CICQ in the base regime: one credit per crosspoint, so a burst
//            serializes on the credit round-trip (send, wait drain + return,
//            send again) and per-flow throughput collapses to 1/(1 + RTT)
//            while the VOQ backlog grows — the instability
//   stab:1   the burst-stabilization protocol: a VOQ backing up past the
//            threshold unlocks the crosspoint's full depth in credits,
//            pipelining the round-trip and restoring throughput
//
// The bench exits nonzero unless the story holds deterministically: the
// base regime must measurably collapse relative to the per-VC reference
// (else the instability claim proves nothing), the stabilized run must
// recover to the reference's delivered load and shed the queueing delay,
// and the CICQ counters must attribute the difference (credit stalls in the
// base regime, burst activations in the stabilized one).

#include "bench_util.hpp"

#include "mmr/snapshot/signals.hpp"

namespace {

mmr::Workload bursty_workload(const mmr::SimConfig& config) {
  using namespace mmr;
  Rng rng(config.seed, 1);
  VbrMixSpec mix;
  // The realised load is VC-capped (64 sequences/link x ~5.6 Mbps mean is
  // ~36% of a link); what matters is the burstiness: every frame arrives
  // back-to-back at link rate, and one crosspoint credit turns around only
  // every 1 + RTT cycles (1/9 of a link here).  A frame burst therefore
  // pours in ~9x faster than the base regime can drain it, and with random
  // destinations the hot crosspoints run right at the credit cap — the VOQ
  // backlog (and with it the flit delay) diverges.
  mix.target_load = 0.75;
  mix.model = InjectionModel::kBackToBack;
  mix.trace_gops = 4;
  return build_vbr_mix(config, mix, rng);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmr;
  bench::BenchArgs args = bench::parse_args(argc, argv);

  snapshot::SignalGuard signals;

  SimConfig base;
  base.ports = 4;
  base.vcs_per_link = 64;
  base.buffer_flits_per_vc = 16;  // the NIC credit loop must not be the cap
  base.credit_latency = 8;        // widen the crosspoint round-trip
  bench::apply_run_scale(base, args, /*quick=*/40'000, /*full=*/160'000);

  std::cout << "==== CICQ burst stability: Back-to-Back VBR bursts, "
            << "crosspoint credit RTT " << base.credit_latency
            << " cycles ====\n"
            << "router " << base.ports << "x" << base.ports << ", "
            << base.vcs_per_link << " VCs/link, " << base.warmup_cycles
            << " warmup + " << base.measure_cycles << " measured cycles\n\n";

  struct Regime {
    const char* label;
    const char* qd;
  };
  const Regime regimes[] = {
      {"vc", "vc"},
      // xp:12 >= 1 + RTT: under burst credits the round-trip pipelines
      // completely; stab:0 parks all but one of the same depth forever.
      {"cicq stab:0", "cicq,stab:0,xp:12,thresh:4"},
      {"cicq stab:1", "cicq,stab:1,xp:12,thresh:4"},
  };

  AsciiTable table({"regime", "delivered %", "mean delay us", "max delay us",
                    "xp transfers", "credit stalls", "bursts on/off"});
  SimulationMetrics results[3];

  for (std::size_t i = 0; i < 3; ++i) {
    if (const int sig = snapshot::SignalGuard::consume()) {
      std::cout << "interrupted by signal " << sig << '\n';
      return snapshot::exit_status_for_signal(sig);
    }
    SimConfig config = base;
    config.qd_spec = regimes[i].qd;

    MmrSimulation simulation(config, bursty_workload(config));
    try {
      results[i] = simulation.run();
    } catch (const snapshot::Interrupted& stop) {
      std::cout << "interrupted by signal " << stop.signal_number()
                << " mid-run";
      if (!stop.checkpoint().empty())
        std::cout << "; post-mortem checkpoint: " << stop.checkpoint()
                  << " (resume with snap=resume:<path>)";
      std::cout << '\n';
      return snapshot::exit_status_for_signal(stop.signal_number());
    }
    simulation.check_invariants();
    const SimulationMetrics& m = results[i];
    const CicqMetrics& cq = m.cicq;
    table.add_row(
        {regimes[i].label, AsciiTable::num(m.delivered_load * 100, 1),
         AsciiTable::num(m.flit_delay_us.mean(), 2),
         AsciiTable::num(m.flit_delay_us.max(), 2),
         cq.enabled ? std::to_string(cq.transfers) : "-",
         cq.enabled ? std::to_string(cq.credit_stalls) : "-",
         cq.enabled ? std::to_string(cq.burst_activations) + "/" +
                          std::to_string(cq.burst_deactivations)
                    : "-"});
  }
  std::cout << table.render() << '\n';

  bool verdict_ok = true;
  const auto fail = [&verdict_ok](const std::string& why) {
    std::cout << "VERDICT FAIL: " << why << '\n';
    verdict_ok = false;
  };

  const SimulationMetrics& vc = results[0];
  const SimulationMetrics& unstable = results[1];
  const SimulationMetrics& stabilized = results[2];

  // The instability: flow control is lossless, so the diverging VOQ backlog
  // shows up as queueing delay growing without bound (Gunther's signature)
  // plus a delivered-load deficit against the per-VC reference.
  if (unstable.flit_delay_us.mean() < 10.0 * vc.flit_delay_us.mean()) {
    fail("base CICQ mean delay (" +
         AsciiTable::num(unstable.flit_delay_us.mean(), 2) +
         " us) never diverged from the vc reference (" +
         AsciiTable::num(vc.flit_delay_us.mean(), 2) + " us)");
  }
  if (unstable.flit_delay_us.max() < 10.0 * vc.flit_delay_us.max()) {
    fail("base CICQ worst-case delay stayed near the vc reference — no "
         "backlog divergence");
  }
  if (unstable.delivered_load > stabilized.delivered_load - 0.005) {
    fail("base CICQ delivered " +
         AsciiTable::num(unstable.delivered_load * 100, 1) +
         "% vs stabilized " +
         AsciiTable::num(stabilized.delivered_load * 100, 1) +
         "% — the credit cap cost no throughput");
  }
  if (unstable.cicq.credit_stalls == 0 ||
      unstable.cicq.burst_activations != 0) {
    fail("base regime counters are wrong: the collapse must show as credit "
         "stalls, with stabilization never activating");
  }
  // The recovery: burst credits must restore the reference's delivered load
  // and shed the base regime's queueing delay.
  if (stabilized.delivered_load < 0.98 * vc.delivered_load) {
    fail("stabilized CICQ delivered " +
         AsciiTable::num(stabilized.delivered_load * 100, 1) +
         "% vs vc reference " + AsciiTable::num(vc.delivered_load * 100, 1) +
         "% — burst credits did not restore throughput");
  }
  if (stabilized.flit_delay_us.mean() > 0.1 * unstable.flit_delay_us.mean()) {
    fail("stabilization did not shed the base regime's queueing delay (" +
         AsciiTable::num(stabilized.flit_delay_us.mean(), 2) + " vs " +
         AsciiTable::num(unstable.flit_delay_us.mean(), 2) + " us mean)");
  }
  // Attribution: the protocol actually cycled, and it removed the stalls.
  if (stabilized.cicq.burst_activations == 0) {
    fail("stabilized run never activated a burst regime");
  }
  if (stabilized.cicq.credit_stalls >= unstable.cicq.credit_stalls) {
    fail("stabilization did not reduce credit stalls");
  }

  std::cout << (verdict_ok
                    ? "VERDICT PASS: one-credit CICQ collapses under "
                      "Back-to-Back bursts;\nburst stabilization recovers "
                      "the per-VC reference throughput.\n"
                    : "one or more stability properties failed (see above)\n");
  return verdict_ok ? 0 : 1;
}
