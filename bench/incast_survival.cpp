// Incast survival: credit flow control vs the shared-buffer MMU regime.
//
// Every lossless (CBR) connection converges on one hot output at ~1.8x its
// capacity, best-effort background rides along, and one rogue source
// inflates its admitted rate with periodic bursts — the incast + rogue
// pattern datacenter MMUs are built for.  Two scenarios per arbiter, both
// from the same fixed seed so the comparison is deterministic:
//
//   credit   the paper's per-VC credit regime; nothing is ever dropped, but
//            the incast backlog grows without bound and compliant
//            connections blow through their QoS deadline
//   shared   `flow=shared` + demote policing: dynamic-threshold admission
//            sheds the (lossy) policed excess, Xon/Xoff pause holds the
//            rest at the NIC, and ECN marks shape sources down
//
// The bench exits nonzero unless the survival story holds: under the shared
// regime lossless-class drops are exactly zero while pauses fired, every
// pause closed in bounded time, and ECN marked; under plain credit the same
// load measurably violates compliant QoS (the baseline must hurt, or the
// survival claim proves nothing).

#include "bench_util.hpp"

#include "mmr/snapshot/signals.hpp"

namespace {

mmr::Workload incast_workload(const mmr::SimConfig& config, double hot_load) {
  using namespace mmr;
  Rng rng(config.seed, 1);
  CbrMixSpec mix;
  mix.target_load = hot_load;
  mix.classes = {kCbrHigh};
  mix.class_weights = {1.0};
  mix.hot_output = 0;  // all lossless traffic converges on one output
  Workload workload = build_cbr_mix(config, mix, rng);
  BestEffortSpec background;
  background.load = 0.1;
  background.connections_per_link = 2;
  Rng be_rng = rng.fork(0xBE);
  add_best_effort(workload, config, background, be_rng);
  return workload;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmr;
  bench::BenchArgs args = bench::parse_args(argc, argv);

  // Ctrl-C / SIGTERM: finish nothing mid-write.  Between runs the pending
  // flag is polled; mid-run a `snap=` override makes the managed loop write
  // a signal-tagged post-mortem checkpoint and throw snapshot::Interrupted.
  snapshot::SignalGuard signals;

  SimConfig base;
  base.ports = 4;
  base.vcs_per_link = 64;
  bench::apply_run_scale(base, args, /*quick=*/60'000, /*full=*/240'000);

  const double hot_load = 1.8 / static_cast<double>(base.ports);
  const char* rogue =
      "count:1,scale:4,burst_scale:2,burst_period:5000,burst_len:1000,"
      "class:cbr";

  std::cout << "==== Incast survival: " << base.ports
            << " inputs -> 1 hot output at 180% capacity, rogue at " << rogue
            << " ====\n"
            << "router " << base.ports << "x" << base.ports << ", "
            << base.vcs_per_link << " VCs/link, " << base.warmup_cycles
            << " warmup + " << base.measure_cycles << " measured cycles\n\n";

  bool verdict_ok = true;
  const auto fail = [&verdict_ok](const std::string& why) {
    std::cout << "VERDICT FAIL: " << why << '\n';
    verdict_ok = false;
  };

  for (const std::string& arbiter : args.arbiters) {
    AsciiTable table({"regime", "drops lossless", "drops lossy", "pauses",
                      "max pause", "ecn marked", "compliant viol %",
                      "delivered %"});

    for (const bool shared : {false, true}) {
      if (const int sig = snapshot::SignalGuard::consume()) {
        std::cout << "interrupted by signal " << sig
                  << "; partial results above\n";
        return snapshot::exit_status_for_signal(sig);
      }
      SimConfig config = base;
      config.arbiter = arbiter;
      config.rogue_spec = rogue;
      config.flow_spec = shared ? "shared" : "";
      config.police_spec = shared ? "demote" : "";

      MmrSimulation simulation(config, incast_workload(config, hot_load));
      SimulationMetrics m;
      try {
        m = simulation.run();
      } catch (const snapshot::Interrupted& stop) {
        std::cout << "interrupted by signal " << stop.signal_number()
                  << " mid-run";
        if (!stop.checkpoint().empty())
          std::cout << "; post-mortem checkpoint: " << stop.checkpoint()
                    << " (resume with snap=resume:<path>)";
        std::cout << '\n';
        return snapshot::exit_status_for_signal(stop.signal_number());
      }
      simulation.check_invariants();
      const MmuMetrics& mmu = m.mmu;
      const OverloadMetrics& o = m.overload;

      table.add_row(
          {shared ? "shared" : "credit",
           mmu.enabled ? std::to_string(mmu.drops_lossless) : "-",
           mmu.enabled ? std::to_string(mmu.drops_lossy) : "-",
           mmu.enabled ? std::to_string(mmu.pause_events) : "-",
           mmu.enabled ? std::to_string(mmu.pause_cycles_max) : "-",
           mmu.enabled ? std::to_string(mmu.ecn_marked) : "-",
           o.enabled ? AsciiTable::num(o.compliant_violation_rate() * 100, 2)
                     : "-",
           AsciiTable::num(m.delivered_load * 100, 1)});

      const std::string tag = arbiter + (shared ? "/shared" : "/credit");
      if (shared) {
        if (!mmu.enabled) {
          fail(tag + ": MMU accounting not enabled");
          continue;
        }
        // The lossless-survival guarantee, and the machinery that earns it:
        // pauses fired, every pause closed in bounded time, ECN marked.
        if (mmu.drops_lossless != 0) {
          fail(tag + ": " + std::to_string(mmu.drops_lossless) +
               " lossless-class drops (headroom undersized?)");
        }
        if (mmu.pause_events == 0) {
          fail(tag + ": the incast never triggered an Xoff pause");
        }
        // Bounded pauses need a fair drain: COA's round-robin pointer
        // guarantees every paused input keeps winning grants, and WFA's
        // rotating corner bounds every input's wait at a contested output by
        // P arbitrations — so for both, the longest pause must close within
        // the QoS deadline.  (The legacy fixed-corner "wfa-fixed" serves a
        // contested output in strict input-index order and can leave a
        // high-index input paused for the whole run — the starvation bug
        // the rotation fixed; see EXPERIMENTS.md.)
        if ((arbiter == "coa" || arbiter == "wfa") &&
            static_cast<double>(mmu.pause_cycles_max) > kQosDeadlineCycles) {
          fail(tag + ": a pause stayed open for " +
               std::to_string(mmu.pause_cycles_max) + " cycles (> " +
               std::to_string(static_cast<long>(kQosDeadlineCycles)) +
               "-cycle QoS deadline; backpressure released too slowly)");
        }
        if (mmu.ecn_marked == 0) {
          fail(tag + ": shared-pool pressure never drew an ECN mark");
        }
      } else {
        // The baseline must visibly suffer, otherwise survival is vacuous.
        if (!o.enabled || o.compliant_violations == 0) {
          fail(tag + ": compliant QoS survived the incast without the MMU");
        }
      }
    }
    std::cout << arbiter << ":\n" << table.render() << '\n';
  }

  std::cout << (verdict_ok
                    ? "VERDICT PASS: flow=shared keeps lossless classes at "
                      "zero drops under incast + rogue;\nplain credit flow "
                      "lets the same load break compliant QoS.\n"
                    : "one or more survival properties failed (see above)\n");
  return verdict_ok ? 0 : 1;
}
