// Shared-buffer MMU soak: many seeds x {credit, shared} x {coa, wfa} on
// short incast-heavy runs with rogue bursts, the SimAuditor's periodic
// MMU-conservation sweeps riding along.  After every run:
//   - shared regime: zero lossless-class drops (the survival guarantee),
//     pool books balanced against the router (admissions == accepted flits),
//     pause/resume events balanced (at most the port count still open)
//   - credit regime: MMU accounting stays disabled (bit-identical path)
// Exit status 0 only on a clean soak; registered with ctest under the
// `tier2` label at seeds=200 (scripts/check.sh runs it).

#include <cstdint>
#include <iostream>
#include <string>

#include "mmr/core/simulation.hpp"
#include "mmr/snapshot/signals.hpp"
#include "mmr/snapshot/spec.hpp"

int main(int argc, char** argv) {
  using namespace mmr;
  std::uint32_t seeds = 200;
  std::string snap_spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("seeds=", 0) == 0) {
      seeds = static_cast<std::uint32_t>(std::stoul(arg.substr(6)));
    } else if (arg.rfind("snap=", 0) == 0) {
      snap_spec = arg.substr(5);
    } else {
      std::cerr << "usage: mmu_soak [seeds=N] [snap=SPEC]\n";
      return 2;
    }
  }
  if (!snap_spec.empty()) {
    try {
      (void)snapshot::SnapSpec::parse(snap_spec);  // fail fast on bad grammar
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << '\n';
      return 2;
    }
  }

  // A soak is exactly the run one wants to stop cleanly: poll for
  // SIGINT/SIGTERM between seeds so a partial soak still reports its
  // verdict-so-far and exits with the conventional 128+signo status.
  snapshot::SignalGuard signals;

  const char* arbiters[2] = {"coa", "wfa"};
  // Queue disciplines ride along: the shared-buffer books are kept at the
  // accept/departure boundary, so pool conservation and the survival
  // guarantee must hold whether flits sit in VC FIFOs, VOQs or crosspoints.
  const char* qds[3] = {"", "voq", "cicq"};

  std::cout << "==== MMU soak: " << seeds
            << " seeds x {credit, shared} x {coa, wfa} x {vc, voq, cicq} "
               "====\n";

  std::uint64_t failures = 0;
  const auto fail = [&failures](std::uint64_t seed, const std::string& regime,
                                const std::string& why) {
    std::cerr << "seed " << seed << " (" << regime << "): " << why << '\n';
    ++failures;
  };

  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    if (const int sig = snapshot::SignalGuard::consume()) {
      std::cout << "soak interrupted by signal " << sig << " after "
                << (seed - 1) << "/" << seeds << " seeds, " << failures
                << " violations so far\n";
      return snapshot::exit_status_for_signal(sig);
    }
    for (const bool shared : {false, true}) {
      SimConfig config;
      config.ports = 4;
      config.vcs_per_link = 64;
      config.warmup_cycles = 500;
      config.measure_cycles = 4'000;
      config.seed = seed;
      config.arbiter = arbiters[seed % 2];
      config.audit_every = 512;  // MMU-aware auditor sweeps ride along
      config.qd_spec = qds[seed % 3];
      config.flow_spec = shared ? "shared" : "";
      config.police_spec = shared ? "demote" : "";
      // One guaranteed rogue with bursty inflation; load and scale wobble
      // with the seed so the MMU sees both mild and saturating incast.
      config.rogue_spec = "count:1,scale:" + std::to_string(3 + seed % 4) +
                          ",burst_scale:2,burst_period:1500,burst_len:" +
                          std::to_string(300 + 100 * (seed % 3)) +
                          ",class:cbr,seed:" + std::to_string(seed);

      Rng rng(config.seed, 1);
      CbrMixSpec mix;
      mix.classes = {kCbrHigh};
      mix.class_weights = {1.0};
      mix.hot_output = 0;  // incast onto one output
      mix.target_load =
          (1.2 + 0.2 * static_cast<double>(seed % 5)) /
          static_cast<double>(config.ports);
      config.snap_spec = snap_spec;
      MmrSimulation simulation(config, build_cbr_mix(config, mix, rng));
      SimulationMetrics m;
      try {
        m = simulation.run();
      } catch (const snapshot::Interrupted& stop) {
        std::cout << "soak interrupted by signal " << stop.signal_number()
                  << " mid-run (seed " << seed << "), " << failures
                  << " violations so far";
        if (!stop.checkpoint().empty())
          std::cout << "; post-mortem checkpoint: " << stop.checkpoint();
        std::cout << '\n';
        return snapshot::exit_status_for_signal(stop.signal_number());
      }
      simulation.check_invariants();
      const std::string regime = shared ? "shared" : "credit";

      if (!shared) {
        if (m.mmu.enabled) {
          fail(seed, regime, "MMU accounting enabled without flow=shared");
        }
        continue;
      }
      if (!m.mmu.enabled) {
        fail(seed, regime, "MMU accounting not enabled");
        continue;
      }
      if (m.mmu.drops_lossless != 0) {
        fail(seed, regime,
             std::to_string(m.mmu.drops_lossless) + " lossless-class drops");
      }
      const std::uint64_t admitted = m.mmu.admitted_reserved +
                                     m.mmu.admitted_shared +
                                     m.mmu.admitted_headroom;
      if (admitted != simulation.router().flits_accepted()) {
        fail(seed, regime,
             "pool admissions (" + std::to_string(admitted) +
                 ") disagree with router-accepted flits (" +
                 std::to_string(simulation.router().flits_accepted()) + ")");
      }
      if (m.mmu.resume_events > m.mmu.pause_events) {
        fail(seed, regime, "more Xon resumes than Xoff pauses");
      }
      if (m.mmu.pause_events - m.mmu.resume_events > config.ports) {
        fail(seed, regime, "more open pauses than ports");
      }
    }
  }

  if (failures != 0) {
    std::cout << "soak FAILED: " << failures << " violations\n";
    return 1;
  }
  std::cout << "soak clean: " << seeds << " seeds x 2 regimes\n";
  return 0;
}
