// Network scaling bench (ISSUE 9): serial vs sharded engine throughput on
// generated large fabrics — 2-D tori at 64 / 256 / 1024 routers plus a
// k=8 fat-tree.  Reports cycles/s and arbiter-steps/s (routers x cycles
// per wall second: every router arbitrates once per cycle, so this is the
// fabric-level work rate) for net_threads=0 (serial reference) and
// net_threads=hw, and emits mmr-perf-v1 records for
// scripts/bench_compare.py.
//
// Arguments (key=value):
//   mode=smoke|quick|full  run scale (smoke: 64 routers only; quick adds
//                          256; full adds 1024 and the fat-tree)
//   threads=N              sharded engine width (default: hardware;
//                          promoted to >= 2 so the parallel engine runs)
//   out=PATH               BENCH_network.json destination (default:
//                          BENCH_network.json in the cwd)
//   plus any SimConfig key (ports=, vcs=, seed=, ...)

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "mmr/network/network.hpp"
#include "mmr/perf/probe.hpp"
#include "mmr/perf/report.hpp"

namespace mmr {
namespace {

struct Fabric {
  std::string name;        ///< stable label component, e.g. "torus64"
  NetworkTopology topology;
};

struct ScaleArgs {
  std::string mode = "quick";
  std::string out = "BENCH_network.json";
  std::uint32_t threads = std::max(2u, std::thread::hardware_concurrency());
  std::vector<std::string> config_overrides;
};

ScaleArgs parse(int argc, char** argv) {
  ScaleArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = eq == std::string::npos ? arg : arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "mode") {
      args.mode = value;
    } else if (key == "out") {
      args.out = value;
    } else if (key == "threads") {
      args.threads =
          std::max(2u, static_cast<std::uint32_t>(std::stoul(value)));
    } else {
      args.config_overrides.push_back(arg);
    }
  }
  return args;
}

/// One timed run; returns the perf record and reports the wall rate.
perf::PerfRecord timed_run(const SimConfig& base, const Fabric& fabric,
                           std::uint32_t net_threads, const char* engine) {
  SimConfig config = base;
  config.net_threads = net_threads;
  // The fat-tree needs more ports than the torus default; the simulation
  // requires the config to match the fabric's wiring.
  config.ports = fabric.topology.ports_per_router();
  Rng rng(config.seed, 0x5CA1E);
  CbrMixSpec mix;
  mix.target_load = 0.35;
  mix.classes = {kCbrHigh, kCbrMedium};
  mix.class_weights = {3.0, 1.0};
  NetworkWorkload workload =
      build_network_cbr_mix(config, fabric.topology, mix, rng);
  MmrNetworkSimulation simulation(config, std::move(workload));

  perf::PerfRecord record;
  record.label = "network/" + fabric.name + "/" + engine;
  record.kind = "network-scale";
  record.arbiter = config.arbiter;
  record.ports = config.ports;
  const perf::ProbeScope arm(&record.probe);
  const std::uint64_t start = perf::now_ns();
  (void)simulation.run();
  record.probe.add_run(config.total_cycles(), perf::now_ns() - start);
  return record;
}

double rate(const perf::PerfRecord& record) {
  const std::uint64_t wall = record.probe.run_wall_ns();
  if (wall == 0) return 0.0;
  return 1e9 * static_cast<double>(record.probe.simulated_cycles()) /
         static_cast<double>(wall);
}

}  // namespace
}  // namespace mmr

int main(int argc, char** argv) {
  using namespace mmr;
  const ScaleArgs args = parse(argc, argv);

  SimConfig base;
  base.ports = 5;
  base.vcs_per_link = 32;
  if (args.mode == "smoke") {
    base.warmup_cycles = 100;
    base.measure_cycles = 400;
  } else if (args.mode == "full") {
    base.warmup_cycles = 1'000;
    base.measure_cycles = 5'000;
  } else {
    base.warmup_cycles = 500;
    base.measure_cycles = 2'000;
  }
  apply_overrides(base, args.config_overrides);
  base.validate_network();

  std::vector<Fabric> fabrics;
  fabrics.push_back({"torus64", NetworkTopology::torus2d(8, 8, base.ports)});
  if (args.mode != "smoke") {
    fabrics.push_back(
        {"torus256", NetworkTopology::torus2d(16, 16, base.ports)});
  }
  if (args.mode == "full") {
    fabrics.push_back(
        {"torus1024", NetworkTopology::torus2d(32, 32, base.ports)});
    fabrics.push_back(
        {"fattree8", NetworkTopology::fat_tree(8, std::max(base.ports, 9u))});
  }

  std::cout << "==== network scale (" << args.mode << ", "
            << base.total_cycles() << " cycles/run, sharded width "
            << args.threads << ") ====\n\n";
  AsciiTable table({"fabric", "routers", "engine", "cycles/s", "arbiters/s",
                    "speedup"});

  std::vector<perf::PerfRecord> records;
  for (const Fabric& fabric : fabrics) {
    const double routers = static_cast<double>(fabric.topology.routers());
    const perf::PerfRecord serial = timed_run(base, fabric, 0, "serial");
    const perf::PerfRecord sharded =
        timed_run(base, fabric, args.threads, "sharded");
    const double serial_rate = rate(serial);
    const double sharded_rate = rate(sharded);
    for (const perf::PerfRecord* record : {&serial, &sharded}) {
      const double r = rate(*record);
      table.add_row({fabric.name, AsciiTable::num(routers, 0),
                     record == &serial ? "serial" : "sharded",
                     AsciiTable::num(r, 0), AsciiTable::num(r * routers, 0),
                     record == &serial
                         ? std::string("1.00")
                         : AsciiTable::num(
                               serial_rate == 0.0 ? 0.0
                                                  : sharded_rate / serial_rate,
                               2)});
    }
    records.push_back(serial);
    records.push_back(sharded);
  }
  std::cout << table.render() << '\n';
  std::cout << "arbiters/s = routers x cycles/s (one switch arbitration per "
               "router per cycle).\nSpeedup is sharded/serial; expect ~1.0 "
               "on a single hardware thread — the\nsharded engine is "
               "bit-identical, so correctness never depends on width.\n";

  perf::PerfReportMeta meta;
  meta.mode = args.mode;
  meta.threads = args.threads;
  std::ofstream out(args.out);
  if (!out) {
    std::cerr << "cannot open '" << args.out << "' for writing\n";
    return 1;
  }
  perf::write_perf_json(out, meta, records);
  std::cout << "wrote " << records.size() << " records to " << args.out
            << "\n";
  return 0;
}
