// Checkpoint/restore soak: arbiters x {credit, shared} x seeds, CBR and VBR
// traffic alternating by seed.  Every run records its StateHash sequence and
// checkpoints mid-run; the run is then resumed from that checkpoint and must
// finish bit-identical to the uninterrupted original — same final metrics,
// same final StateHash, and a hash sequence equal to the original's
// post-checkpoint suffix.  Any divergence prints the first divergent cycle
// (the StateHash sequence is the oracle) and fails the soak.  Registered
// with ctest under the `tier2` label at seeds=6 (scripts/check.sh runs it).

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "mmr/core/simulation.hpp"
#include "mmr/snapshot/manager.hpp"
#include "mmr/snapshot/signals.hpp"

namespace {

mmr::Workload soak_workload(const mmr::SimConfig& config, bool vbr) {
  using namespace mmr;
  Rng rng(config.seed, 1);
  if (vbr) {
    VbrMixSpec mix;
    mix.target_load = 0.5;
    mix.trace_gops = 2;
    return build_vbr_mix(config, mix, rng);
  }
  CbrMixSpec mix;
  mix.target_load = 0.6;
  mix.classes = {kCbrHigh, kCbrMedium};
  mix.class_weights = {3.0, 1.0};
  return build_cbr_mix(config, mix, rng);
}

using HashSeq = std::vector<std::pair<std::uint64_t, std::uint64_t>>;

/// First cycle at which two (cycle, hash) sequences disagree, 0 when none.
std::uint64_t first_divergence(const HashSeq& a, const HashSeq& b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i].first;
  }
  if (a.size() != b.size()) {
    return (a.size() < b.size() ? b : a)[n].first;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmr;
  std::uint32_t seeds = 6;
  std::string keep;  // move the first checkpoint here (lint smoke artifact)
  std::vector<std::string> arbiters = {"coa", "wfa", "islip", "pim"};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("seeds=", 0) == 0) {
      seeds = static_cast<std::uint32_t>(std::stoul(arg.substr(6)));
    } else if (arg.rfind("keep=", 0) == 0) {
      keep = arg.substr(5);
    } else if (arg.rfind("arbiters=", 0) == 0) {
      arbiters.clear();
      std::string rest = arg.substr(9);
      std::size_t pos = 0;
      while ((pos = rest.find(',')) != std::string::npos) {
        arbiters.push_back(rest.substr(0, pos));
        rest.erase(0, pos + 1);
      }
      if (!rest.empty()) arbiters.push_back(rest);
    } else {
      std::cerr
          << "usage: snapshot_soak [seeds=N] [arbiters=a,b,...] [keep=PATH]\n";
      return 2;
    }
  }

  snapshot::SignalGuard signals;

  constexpr Cycle kWarmup = 500;
  constexpr Cycle kMeasure = 2'500;
  constexpr std::uint64_t kCheckpointAt = 1'500;

  std::cout << "==== Snapshot soak: " << arbiters.size()
            << " arbiters x {credit, shared} x " << seeds
            << " seeds (CBR/VBR alternating) ====\n"
            << "checkpoint at cycle " << kCheckpointAt << " of "
            << (kWarmup + kMeasure) << "; resume must be bit-identical\n\n";

  std::uint64_t failures = 0;
  std::uint64_t runs = 0;
  const auto fail = [&failures](const std::string& tag,
                                const std::string& why) {
    std::cerr << tag << ": " << why << '\n';
    ++failures;
  };

  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    if (const int sig = snapshot::SignalGuard::consume()) {
      std::cout << "soak interrupted by signal " << sig << " after " << runs
                << " runs, " << failures << " failures so far\n";
      return snapshot::exit_status_for_signal(sig);
    }
    for (const std::string& arbiter : arbiters) {
      for (const bool shared : {false, true}) {
        const bool vbr = seed % 2 == 0;
        const std::string tag = arbiter + (shared ? "/shared" : "/credit") +
                                (vbr ? "/vbr" : "/cbr") + "/seed" +
                                std::to_string(seed);
        const std::string prefix = "SNAPSOAK_" + arbiter +
                                   (shared ? "_s" : "_c") + "_" +
                                   std::to_string(seed);

        SimConfig config;
        config.ports = 4;
        config.vcs_per_link = 64;
        config.warmup_cycles = kWarmup;
        config.measure_cycles = kMeasure;
        config.seed = seed;
        config.arbiter = arbiter;
        config.flow_spec = shared ? "shared" : "";
        config.snap_spec = "every:" + std::to_string(kCheckpointAt) +
                           ",hash_every:500,prefix:" + prefix;

        MmrSimulation reference(config, soak_workload(config, vbr));
        const SimulationMetrics ref_metrics = reference.run();
        const std::uint64_t ref_hash = reference.state_hash();
        const HashSeq& ref_seq =
            reference.snapshot_manager()->hash_sequence();
        const auto checkpoints =
            reference.snapshot_manager()->checkpoints_written();
        ++runs;
        if (checkpoints.empty()) {
          fail(tag, "no checkpoint was written");
          continue;
        }

        SimConfig resume_config = config;
        resume_config.snap_spec = "hash_every:500,prefix:" + prefix +
                                  "_re,resume:" + checkpoints.front();
        MmrSimulation resumed(resume_config, soak_workload(config, vbr));
        const SimulationMetrics re_metrics = resumed.run();
        ++runs;

        HashSeq suffix;
        for (const auto& entry : ref_seq) {
          if (entry.first > kCheckpointAt) suffix.push_back(entry);
        }
        const HashSeq& re_seq = resumed.snapshot_manager()->hash_sequence();
        if (re_seq != suffix) {
          fail(tag, "StateHash sequence diverged at cycle " +
                        std::to_string(first_divergence(suffix, re_seq)));
        }
        if (resumed.state_hash() != ref_hash) {
          fail(tag, "final StateHash differs");
        }
        if (re_metrics.flits_delivered != ref_metrics.flits_delivered ||
            re_metrics.flits_generated != ref_metrics.flits_generated ||
            re_metrics.frames_completed != ref_metrics.frames_completed) {
          fail(tag, "final flit/frame counters differ after resume");
        }
        if (re_metrics.flit_delay_us.mean() !=
            ref_metrics.flit_delay_us.mean()) {
          fail(tag, "final delay statistics differ after resume");
        }

        for (const std::string& path : checkpoints) {
          if (!keep.empty() && path == checkpoints.front() &&
              std::rename(path.c_str(), keep.c_str()) == 0) {
            keep.clear();  // kept one artifact; delete the rest as usual
            continue;
          }
          std::remove(path.c_str());
        }
        for (const std::string& path :
             resumed.snapshot_manager()->checkpoints_written()) {
          std::remove(path.c_str());
        }
      }
    }
  }

  if (failures != 0) {
    std::cout << "soak FAILED: " << failures << " divergences in " << runs
              << " runs\n";
    return 1;
  }
  std::cout << "soak clean: " << runs
            << " runs, every resume bit-identical\n";
  return 0;
}
