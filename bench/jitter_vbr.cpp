// Section 5.2's jitter discussion (no figure in the paper): average frame
// jitter — the delay variation between adjacent frames of one connection —
// for both injection models, below saturation.
//
// Paper result: average jitters stay under ~8 us (SR) and ~10s of us (BB),
// far below the several milliseconds MPEG-2 playback tolerates.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mmr;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.loads.empty()) {
    args.loads = args.full
                     ? std::vector<double>{0.30, 0.45, 0.60, 0.70, 0.75}
                     : std::vector<double>{0.40, 0.60, 0.72};
  }

  std::cout << "==== Section 5.2: VBR frame jitter (per-connection mean of "
               "|delay_i - delay_{i-1}|) ====\n\n";
  for (const InjectionModel model :
       {InjectionModel::kSmoothRate, InjectionModel::kBackToBack}) {
    SweepSpec spec;
    spec.kind = WorkloadKind::kVbr;
    spec.loads = args.loads;
    spec.arbiters = args.arbiters;
    spec.threads = args.threads;
    spec.vbr.model = model;
    spec.vbr.trace_gops = 8;
    spec.replications = args.full ? 4 : 2;
    bench::apply_run_scale(spec.base, args, /*quick=*/300'000,
                           /*full=*/1'600'000);

    const std::vector<SweepPoint> points = run_sweep(spec);

    std::cout << to_string(model)
              << " injection model — mean frame jitter (us)\n";
    std::cout << sweep_table(points, frame_jitter_us(), 2).render();
    std::cout << to_string(model)
              << " injection model — max frame jitter (us)\n";
    std::cout << sweep_table(points,
                             [](const SimulationMetrics& m) {
                               return m.max_frame_jitter_us;
                             },
                             2)
                     .render()
              << '\n';

    bench::print_csv_block(points,
                           {{"mean_jitter_us", frame_jitter_us()},
                            {"max_jitter_us",
                             [](const SimulationMetrics& m) {
                               return m.max_frame_jitter_us;
                             }},
                            {"frame_delay_us", frame_delay_us()}});
    std::cout << '\n';
  }
  std::cout << "Reference: MPEG-2 video transmission tolerates jitter of "
               "several milliseconds\n(absorbed at the destination), so "
               "values in the tens of microseconds satisfy QoS.\n";
  return 0;
}
