// QoS protection under best-effort background (the MMR's design goal:
// "satisfy the QoS requirements ... while allocating the remaining
// bandwidth to best-effort traffic").  Fixed QoS load, growing best-effort
// background: with COA the multimedia classes must stay flat while BE
// absorbs the congestion; a priority-blind arbiter lets BE push multimedia
// delays up.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mmr;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  const double qos_load = 0.5;
  const std::vector<double> be_loads =
      args.full ? std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4, 0.5}
                : std::vector<double>{0.0, 0.2, 0.4};

  SimConfig base;
  bench::apply_run_scale(base, args, /*quick=*/200'000, /*full=*/800'000);

  std::cout << "==== QoS protection: " << qos_load * 100
            << "% CBR + growing best-effort background ====\n\n";
  for (const std::string& arbiter : args.arbiters) {
    AsciiTable table({"BE load %", "CBR 55M delay us", "CBR 64K delay us",
                      "BE delay us", "delivered %"});
    for (double be_load : be_loads) {
      SimConfig config = base;
      config.arbiter = arbiter;
      Rng rng(config.seed, 0xBE);
      Workload workload(config.ports);
      CbrMixSpec cbr;
      cbr.target_load = qos_load;
      add_cbr_mix(workload, config, cbr, rng);
      if (be_load > 0.0) {
        BestEffortSpec be;
        be.load = be_load;
        be.connections_per_link = 6;
        add_best_effort(workload, config, be, rng);
      }
      MmrSimulation simulation(config, std::move(workload));
      const SimulationMetrics metrics = simulation.run();
      const auto delay = [&metrics](const char* label) {
        const ClassMetrics* cls = metrics.find_class(label);
        return cls == nullptr || cls->flit_delay_us.empty()
                   ? std::numeric_limits<double>::quiet_NaN()
                   : cls->flit_delay_us.mean();
      };
      table.add_row({AsciiTable::num(be_load * 100, 0),
                     AsciiTable::num(delay("CBR 55 Mbps"), 1),
                     AsciiTable::num(delay("CBR 64 Kbps"), 1),
                     AsciiTable::num(delay("BE"), 1),
                     AsciiTable::num(metrics.delivered_load * 100, 1)});
    }
    std::cout << arbiter << ":\n" << table.render() << '\n';
  }
  std::cout << "Expected: under coa the CBR columns stay flat while BE "
               "absorbs queueing as the\ntotal approaches capacity; "
               "priority-blind arbiters spread the congestion into\nthe "
               "multimedia classes.\n";
  return 0;
}
