// Extension bench (the paper's future work, Section 6): a network of
// several MMRs.  A bidirectional ring of routers carries a CBR mix between
// hosts on different routers; the COA-vs-WFA comparison is repeated with
// multi-hop paths and hop-by-hop credit flow control.

#include <exception>
#include <iostream>

#include "bench_util.hpp"
#include "mmr/network/network.hpp"

namespace {
int run_bench(int argc, char** argv);
}

// Topology/config validation throws (degenerate `routers=`, conflicting
// `flow=shared`, ...); surface those as a clean diagnostic + exit 1 rather
// than an uncaught-exception abort.
int main(int argc, char** argv) {
  try {
    return run_bench(argc, argv);
  } catch (const std::exception& error) {
    const std::string what = error.what();
    std::cerr << (what.rfind("error:", 0) == 0 ? "" : "error: ") << what
              << '\n';
    return 1;
  }
}

namespace {
int run_bench(int argc, char** argv) {
  using namespace mmr;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.loads.empty()) {
    args.loads = args.full
                     ? std::vector<double>{0.30, 0.45, 0.60, 0.70, 0.80, 0.90}
                     : std::vector<double>{0.40, 0.60, 0.80};
  }
  std::uint32_t routers = 4;
  for (const std::string& kv : args.config_overrides) {
    if (kv.rfind("routers=", 0) == 0) routers = static_cast<std::uint32_t>(std::stoul(kv.substr(8)));
  }
  std::erase_if(args.config_overrides, [](const std::string& kv) {
    return kv.rfind("routers=", 0) == 0;
  });

  SimConfig base;
  bench::apply_run_scale(base, args, /*quick=*/120'000, /*full=*/500'000);

  const NetworkTopology ring =
      NetworkTopology::bidirectional_ring(routers, base.ports);
  std::cout << "==== Network extension: " << routers
            << "-router bidirectional ring of " << base.ports << "x"
            << base.ports << " MMRs ====\n"
            << "Per router: 2 channel ports, " << base.ports - 2
            << " host ports; CBR mix per host port; shortest-path PCS "
               "routing;\nhop-by-hop credit flow control (a VC competes only "
               "when its next hop has buffer space).\n\n";

  CbrMixSpec mix;
  mix.classes = {kCbrHigh, kCbrMedium, kCbrLow};
  mix.class_weights = {1.0, 1.0, 1.0};

  struct Cell {
    NetworkMetrics metrics;
  };
  std::vector<std::string> header = {"load %"};
  for (const std::string& arbiter : args.arbiters) {
    header.push_back(arbiter + " delay us");
    header.push_back(arbiter + " delivered %");
  }
  AsciiTable table(header);

  std::vector<std::vector<NetworkMetrics>> grid;
  for (double load : args.loads) {
    std::vector<NetworkMetrics> row;
    for (const std::string& arbiter : args.arbiters) {
      SimConfig config = base;
      config.arbiter = arbiter;
      Rng rng(config.seed, 0x717 + static_cast<std::uint64_t>(load * 1000));
      CbrMixSpec spec = mix;
      spec.target_load = load;
      NetworkWorkload workload =
          build_network_cbr_mix(config, ring, spec, rng);
      MmrNetworkSimulation simulation(config, std::move(workload));
      row.push_back(simulation.run());
    }
    std::vector<std::string> cells = {AsciiTable::num(load * 100, 0)};
    for (const NetworkMetrics& m : row) {
      cells.push_back(AsciiTable::num(m.flit_delay_us.mean(), 1));
      cells.push_back(AsciiTable::num(
          m.flits_generated == 0
              ? 0.0
              : 100.0 * static_cast<double>(m.flits_delivered) /
                    static_cast<double>(m.flits_generated),
          1));
    }
    table.add_row(std::move(cells));
    grid.push_back(std::move(row));
  }
  std::cout << "End-to-end flit delay and delivery ratio vs offered load\n";
  std::cout << table.render() << '\n';

  // Hop distribution + per-router utilization at the heaviest load.
  const NetworkMetrics& heavy = grid.back().front();
  std::cout << "At " << AsciiTable::num(args.loads.back() * 100, 0)
            << "% load with " << args.arbiters.front()
            << ": mean path length "
            << AsciiTable::num(heavy.delivered_hops.mean(), 2)
            << " routers (max "
            << AsciiTable::num(heavy.delivered_hops.max(), 0)
            << "); per-router crossbar utilization:";
  for (double u : heavy.router_utilization) {
    std::cout << ' ' << AsciiTable::num(u * 100, 1) << '%';
  }
  std::cout << "\n\nExpected shape: multi-hop paths raise base delay by "
               "roughly (hops-1) flit cycles\nplus per-hop queueing; COA "
               "retains its advantage near saturation because every\nhop "
               "arbitrates with connection priorities.\n\n";

  // VBR section: MPEG-2 video across the same ring (SR injection).
  std::cout << "---- MPEG-2 VBR across the ring (SR injection) ----\n";
  AsciiTable vbr_table({"load %", "arbiter", "frame delay us",
                        "frames", "delivered %"});
  for (double load : {args.loads.front(), args.loads.back()}) {
    for (const std::string& arbiter : args.arbiters) {
      SimConfig config = base;
      config.arbiter = arbiter;
      config.vcs_per_link = std::max(config.vcs_per_link, 512u);
      Rng rng(config.seed, 0x818 + static_cast<std::uint64_t>(load * 1000));
      VbrMixSpec spec;
      spec.target_load = load;
      spec.trace_gops = 6;
      NetworkWorkload workload =
          build_network_vbr_mix(config, ring, spec, rng);
      MmrNetworkSimulation simulation(config, std::move(workload));
      const NetworkMetrics m = simulation.run();
      vbr_table.add_row(
          {AsciiTable::num(load * 100, 0), arbiter,
           AsciiTable::num(m.frame_delay_us.mean(), 1),
           std::to_string(m.frames_completed),
           AsciiTable::num(m.flits_generated == 0
                               ? 0.0
                               : 100.0 *
                                     static_cast<double>(m.flits_delivered) /
                                     static_cast<double>(m.flits_generated),
                           1)});
    }
  }
  std::cout << vbr_table.render();
  return 0;
}
}  // namespace
