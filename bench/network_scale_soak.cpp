// Sharded-engine equivalence soak (ISSUE 9, tier-2): over many seeds and
// both generated fabric families, the sharded network engine must land on
// the serial engine's exact final state hash and metrics.  Exit status
// gates: any divergence is a hard failure with the seed and fabric named.
//
// Arguments (key=value):
//   seeds=N     seeds per fabric (default 50)
//   threads=N   sharded width (default: hardware; 1 is promoted to 2 so
//               the parallel engine actually runs)
//   big=1       append a single-seed 1024-router torus leg (the ISSUE 9
//               acceptance fabric; short run, still hash-exact)
//   plus any SimConfig key (ports=, vcs=, ...)

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "mmr/network/network.hpp"

namespace mmr {
namespace {

struct SoakArgs {
  std::uint64_t seeds = 50;
  std::uint32_t threads = std::max(2u, std::thread::hardware_concurrency());
  bool big = false;
  std::vector<std::string> config_overrides;
};

SoakArgs parse(int argc, char** argv) {
  SoakArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = eq == std::string::npos ? arg : arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "seeds") {
      args.seeds = std::stoull(value);
    } else if (key == "threads") {
      args.threads = std::max(
          2u, static_cast<std::uint32_t>(std::stoul(value)));
    } else if (key == "big") {
      args.big = value != "0";
    } else {
      args.config_overrides.push_back(arg);
    }
  }
  return args;
}

struct RunOutcome {
  std::uint64_t hash = 0;
  NetworkMetrics metrics;
};

RunOutcome run_engine(const SimConfig& config, const NetworkTopology& topology,
                      std::uint32_t net_threads) {
  SimConfig run_config = config;
  run_config.net_threads = net_threads;
  Rng rng(run_config.seed, 0x50AC);
  CbrMixSpec mix;
  mix.target_load = 0.4;
  mix.classes = {kCbrHigh, kCbrMedium};
  mix.class_weights = {3.0, 1.0};
  MmrNetworkSimulation simulation(
      run_config, build_network_cbr_mix(run_config, topology, mix, rng));
  RunOutcome outcome;
  outcome.metrics = simulation.run();
  outcome.hash = simulation.state_hash();
  return outcome;
}

/// Compares one seed's serial and sharded runs; prints and counts failures.
bool check_pair(const std::string& fabric, std::uint64_t seed,
                const RunOutcome& serial, const RunOutcome& sharded) {
  const bool ok = serial.hash == sharded.hash &&
                  serial.metrics.flits_generated ==
                      sharded.metrics.flits_generated &&
                  serial.metrics.flits_delivered ==
                      sharded.metrics.flits_delivered &&
                  serial.metrics.flit_delay_us.mean() ==
                      sharded.metrics.flit_delay_us.mean() &&
                  serial.metrics.flit_delay_us.variance() ==
                      sharded.metrics.flit_delay_us.variance();
  if (!ok) {
    std::cout << "DIVERGED: " << fabric << " seed=" << seed << " hash "
              << serial.hash << " vs " << sharded.hash << ", delivered "
              << serial.metrics.flits_delivered << " vs "
              << sharded.metrics.flits_delivered << "\n";
  }
  return ok;
}

}  // namespace
}  // namespace mmr

int main(int argc, char** argv) {
  using namespace mmr;
  const SoakArgs args = parse(argc, argv);

  SimConfig base;
  base.ports = 5;
  base.vcs_per_link = 32;
  base.warmup_cycles = 200;
  base.measure_cycles = 800;
  apply_overrides(base, args.config_overrides);
  base.validate_network();

  std::cout << "==== network shard equivalence soak: " << args.seeds
            << " seeds x {torus 4x4, fat-tree k=4}, serial vs "
            << args.threads << "-wide sharded ====\n";

  const NetworkTopology torus = NetworkTopology::torus2d(4, 4, base.ports);
  const NetworkTopology tree = NetworkTopology::fat_tree(4, base.ports);

  std::uint64_t checked = 0;
  std::uint64_t failures = 0;
  for (std::uint64_t seed = 1; seed <= args.seeds; ++seed) {
    SimConfig config = base;
    config.seed = seed;
    // Odd seeds also carry a fault plan so injector RNG-lane ownership
    // stays covered across the sweep.
    if (seed % 2 == 1) {
      config.fault_spec =
          "drop:0.01,credit_loss:0.005,resync_period:256,resync_timeout:512";
    }
    const std::pair<const char*, const NetworkTopology*> fabrics[] = {
        {"torus4x4", &torus}, {"fattree4", &tree}};
    for (const auto& [name, topology] : fabrics) {
      const RunOutcome serial = run_engine(config, *topology, 0);
      const RunOutcome sharded = run_engine(config, *topology, args.threads);
      ++checked;
      if (!check_pair(name, seed, serial, sharded)) ++failures;
    }
  }

  if (args.big) {
    SimConfig config = base;
    config.warmup_cycles = 100;
    config.measure_cycles = 200;
    const NetworkTopology big =
        NetworkTopology::torus2d(32, 32, base.ports);
    std::cout << "1024-router torus leg (" << config.total_cycles()
              << " cycles)...\n";
    const RunOutcome serial = run_engine(config, big, 0);
    const RunOutcome sharded = run_engine(config, big, args.threads);
    ++checked;
    if (!check_pair("torus32x32", config.seed, serial, sharded)) ++failures;
  }

  std::cout << checked << " pairs checked, " << failures << " diverged\n";
  if (failures != 0) {
    std::cout << "FAIL: sharded engine diverged from serial\n";
    return 1;
  }
  std::cout << "PASS: sharded engine bit-identical to serial on every pair\n";
  return 0;
}
