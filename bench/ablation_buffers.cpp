// Ablation: VC buffer depth (credits per VC).  The MMR's credit-based flow
// control is designed to need only "a few flits" per VC; this measures what
// depth actually buys at a demanding load.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mmr;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.loads.empty()) args.loads = {0.60, 0.75, 0.85};
  const std::vector<std::uint32_t> depths = {1, 2, 4, 8};

  std::cout << "==== Ablation: MMR buffer depth per VC (credits) ====\n\n";
  for (const std::string& arbiter : args.arbiters) {
    std::vector<std::string> header = {"load %"};
    for (std::uint32_t depth : depths)
      header.push_back("B=" + std::to_string(depth));
    AsciiTable delivered(header);
    AsciiTable delay(header);

    std::vector<std::vector<SweepPoint>> results;
    for (std::uint32_t depth : depths) {
      SweepSpec spec;
      spec.kind = WorkloadKind::kCbr;
      spec.loads = args.loads;
      spec.arbiters = {arbiter};
      spec.threads = args.threads;
      spec.replications = args.full ? 4 : 2;
      bench::apply_run_scale(spec.base, args, /*quick=*/120'000,
                             /*full=*/600'000);
      spec.base.buffer_flits_per_vc = depth;
      results.push_back(run_sweep(spec));
    }
    for (std::size_t li = 0; li < args.loads.size(); ++li) {
      std::vector<std::string> rowd = {AsciiTable::num(args.loads[li] * 100, 0)};
      std::vector<std::string> rowl = rowd;
      for (std::size_t c = 0; c < depths.size(); ++c) {
        const SimulationMetrics& m = results[c][li].metrics;
        rowd.push_back(AsciiTable::num(m.delivered_load * 100, 1));
        rowl.push_back(AsciiTable::num(m.flit_delay_us.mean(), 1));
      }
      delivered.add_row(std::move(rowd));
      delay.add_row(std::move(rowl));
    }
    std::cout << arbiter << " — delivered load (%)\n" << delivered.render();
    std::cout << arbiter << " — mean flit delay (us)\n" << delay.render()
              << '\n';
  }
  return 0;
}
