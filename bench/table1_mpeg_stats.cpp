// Table 1: MPEG-2 video sequence statistics — max / min / average image
// size (bits) per sequence.  The original trace files are unavailable, so
// this prints the statistics of our synthetic trace generator (see
// DESIGN.md), realised with the default seed, plus the derived rates the
// experiments depend on.

#include <iostream>

#include "mmr/sim/rng.hpp"
#include "mmr/sim/table.hpp"
#include "mmr/traffic/mpeg.hpp"

int main(int argc, char** argv) {
  using namespace mmr;
  std::uint32_t gops = 40;  // long enough for stable extremes
  std::uint64_t seed = 0x5EED;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("gops=", 0) == 0) gops = static_cast<std::uint32_t>(std::stoul(arg.substr(5)));
    if (arg.rfind("seed=", 0) == 0) seed = std::stoull(arg.substr(5));
  }

  std::cout << "==== Table 1: MPEG-2 video sequence statistics ====\n";
  std::cout << "synthetic traces, " << gops << " GOPs ("
            << gops * kGopFrames << " frames) each, GOP = IBBPBBPBBPBBPBB, "
            << "frame period = 33 ms\n\n";

  AsciiTable table({"Video Sequence", "Max (bits)", "Min (bits)",
                    "Average (bits)", "Mean rate (Mbps)", "Peak rate (Mbps)",
                    "Peak/Mean"});
  Rng rng(seed, 0x7AB1E);
  for (const MpegSequenceParams& params : mpeg_sequence_library()) {
    const MpegTrace trace = generate_mpeg_trace(params, gops, rng);
    table.add_row({params.name, std::to_string(trace.max_frame_bits()),
                   std::to_string(trace.min_frame_bits()),
                   AsciiTable::num(trace.mean_frame_bits(), 0),
                   AsciiTable::num(trace.mean_bps() / 1e6, 2),
                   AsciiTable::num(trace.peak_bps() / 1e6, 2),
                   AsciiTable::num(trace.peak_bps() / trace.mean_bps(), 2)});
  }
  std::cout << table.render();

  std::cout << "\nPer-frame-type configuration (model parameters):\n";
  AsciiTable config({"Video Sequence", "I mean (kbit)", "P mean (kbit)",
                     "B mean (kbit)", "cv I", "cv P", "cv B"});
  for (const MpegSequenceParams& params : mpeg_sequence_library()) {
    config.add_row({params.name, AsciiTable::num(params.mean_bits_i / 1e3, 0),
                    AsciiTable::num(params.mean_bits_p / 1e3, 0),
                    AsciiTable::num(params.mean_bits_b / 1e3, 0),
                    AsciiTable::num(params.cv_i, 2),
                    AsciiTable::num(params.cv_p, 2),
                    AsciiTable::num(params.cv_b, 2)});
  }
  std::cout << config.render();
  return 0;
}
