// Overload-protection soak: many seeds x {drop, shape, demote} x {coa, wfa}
// on short rogue-heavy runs, with the policer's internal invariants checked
// (token non-negativity, penalty-queue bounds, backlog accounting) and the
// cross-run protection properties asserted after every run:
//   - compliant CBR connections are never policed (their pacing conforms)
//   - the rogue excess is always policed
//   - only rogue connections ever become noncompliant
//   - watchdog stage cycles partition the run exactly
// Exit status 0 only on a clean soak; registered with ctest under the
// `tier2` label at seeds=200 (scripts/check.sh runs it).

#include <cstdint>
#include <iostream>
#include <string>

#include "mmr/core/simulation.hpp"

int main(int argc, char** argv) {
  using namespace mmr;
  std::uint32_t seeds = 200;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("seeds=", 0) == 0) {
      seeds = static_cast<std::uint32_t>(std::stoul(arg.substr(6)));
    } else {
      std::cerr << "usage: overload_soak [seeds=N]\n";
      return 2;
    }
  }

  const char* policies[3] = {"drop", "shape,penalty:48", "demote"};
  const char* arbiters[2] = {"coa", "wfa"};
  // The queue-discipline axis rides along: policing happens at NIC
  // injection, so its guarantees must hold identically over VOQ and CICQ
  // buffering (cicq deliberately cycles both stabilization settings).
  const char* qds[4] = {"", "voq", "cicq,stab:0", "cicq,stab:1"};

  std::cout << "==== Overload-protection soak: " << seeds
            << " seeds x {drop, shape, demote} x {vc, voq, cicq} ====\n";

  std::uint64_t failures = 0;
  const auto fail = [&failures](std::uint64_t seed, const std::string& why) {
    std::cerr << "seed " << seed << ": " << why << '\n';
    ++failures;
  };

  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    SimConfig config;
    config.ports = 4;
    config.vcs_per_link = 32;
    config.warmup_cycles = 500;
    config.measure_cycles = 4'000;
    config.seed = seed;
    config.arbiter = arbiters[seed % 2];
    config.audit_every = 256;  // periodic SimAuditor sweeps ride along
    config.police_spec = policies[seed % 3];
    config.qd_spec = qds[seed % 4];
    // Two guaranteed rogues; scale and load wobble with the seed so the
    // policer sees both mild and saturating excess.
    // Scale starts at 3x: a 2x burst on a one-slot connection fits the
    // minimum bucket depth of 2 and would legitimately pass unpoliced.
    config.rogue_spec = "count:2,scale:" + std::to_string(3 + seed % 4) +
                        ",seed:" + std::to_string(seed);

    Rng rng(config.seed, 1);
    CbrMixSpec mix;
    // The 64 Kbps class emits less than one flit in a soak-length run, so a
    // rogue landing on it could legitimately go unpoliced; keep the classes
    // whose inter-arrival fits the window.
    mix.classes = {kCbrHigh, kCbrMedium};
    mix.class_weights = {3.0, 1.0};
    mix.target_load = 0.35 + 0.05 * static_cast<double>(seed % 5);
    MmrSimulation simulation(config, build_cbr_mix(config, mix, rng));
    const SimulationMetrics m = simulation.run();
    simulation.check_invariants();
    const OverloadMetrics& o = m.overload;

    if (!o.enabled) {
      fail(seed, "overload metrics not enabled");
      continue;
    }
    if (o.rogue_connections != 2) {
      fail(seed, "expected 2 rogue connections, got " +
                     std::to_string(o.rogue_connections));
    }
    if (o.compliant_policed != 0) {
      fail(seed, "compliant CBR connections were policed (" +
                     std::to_string(o.compliant_policed) + " actions)");
    }
    if (o.rogue_policed == 0) {
      fail(seed, "rogue excess was never policed");
    }
    if (o.noncompliant_connections > o.rogue_connections) {
      fail(seed, "a compliant connection was marked noncompliant");
    }
    const std::uint64_t staged = o.cycles_in_stage[0] + o.cycles_in_stage[1] +
                                 o.cycles_in_stage[2] + o.cycles_in_stage[3];
    if (staged != config.total_cycles()) {
      fail(seed, "watchdog stage cycles do not partition the run (" +
                     std::to_string(staged) + " vs " +
                     std::to_string(config.total_cycles()) + ")");
    }
  }

  if (failures != 0) {
    std::cout << "soak FAILED: " << failures << " violations\n";
    return 1;
  }
  std::cout << "soak clean: " << seeds << " seeds\n";
  return 0;
}
