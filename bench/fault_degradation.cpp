// Robustness bench: COA vs WFA on a ring of MMRs under an identical,
// deterministic fault plan.  A mid-run link outage forces teardown and
// re-admission over the next shortest path while background bit-error rates
// drop/corrupt flits and lose credit returns; the credit-resync watchdog
// heals the leaks.  Reported per arbiter: loss counts, recovery-latency
// percentiles, QoS-violation rates during vs outside the fault windows, and
// per-class survival.
//
// Extra keys on top of the usual bench args:
//   fault=SPEC      fault plan (default: drop:2e-4,corrupt:1e-4,
//                   credit_loss:1e-4 plus one outage window per run)
//   routers=N       ring size (default 4)

#include <iostream>

#include "bench_util.hpp"
#include "mmr/network/network.hpp"

int main(int argc, char** argv) {
  using namespace mmr;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.loads.empty()) {
    args.loads = args.full ? std::vector<double>{0.30, 0.45, 0.60}
                           : std::vector<double>{0.40};
  }
  std::uint32_t routers = 4;
  std::string fault_spec;
  for (const std::string& kv : args.config_overrides) {
    if (kv.rfind("routers=", 0) == 0) {
      routers = static_cast<std::uint32_t>(std::stoul(kv.substr(8)));
    }
    if (kv.rfind("fault=", 0) == 0) fault_spec = kv.substr(6);
  }
  std::erase_if(args.config_overrides, [](const std::string& kv) {
    return kv.rfind("routers=", 0) == 0 || kv.rfind("fault=", 0) == 0;
  });

  SimConfig base;
  bench::apply_run_scale(base, args, /*quick=*/120'000, /*full=*/500'000);

  const NetworkTopology ring =
      NetworkTopology::bidirectional_ring(routers, base.ports);
  std::cout << "==== Fault injection: " << routers
            << "-router ring under a deterministic fault plan ====\n"
            << "cycles: " << base.warmup_cycles << " warmup + "
            << base.measure_cycles << " measured\n";

  // One outage window in the middle of the measurement phase plus light
  // stochastic losses everywhere, unless the caller provided a spec.
  if (fault_spec.empty()) {
    const Cycle down_at = base.warmup_cycles + base.measure_cycles / 3;
    const Cycle up_at = down_at + base.measure_cycles / 6;
    fault_spec = "drop:2e-4,corrupt:1e-4,credit_loss:1e-4,down:0:" +
                 std::to_string(down_at) + ":" + std::to_string(up_at);
  }
  try {
    (void)FaultPlan::parse(fault_spec);  // fail fast on a bad fault= spec
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  std::cout << "fault plan: " << fault_spec << "\n\n";

  AsciiTable table({"load %", "arbiter", "delivered %", "dropped", "corrupted",
                    "cred lost/healed", "teardown/reroute/readmit",
                    "recovery p50/p95 us", "viol% fault", "viol% calm"});
  std::vector<std::pair<double, std::vector<NetworkMetrics>>> grid;
  for (double load : args.loads) {
    std::vector<NetworkMetrics> row;
    for (const std::string& arbiter : args.arbiters) {
      SimConfig config = base;
      config.arbiter = arbiter;
      config.fault_spec = fault_spec;
      // Identical workload per arbiter: the comparison isolates scheduling.
      Rng rng(config.seed, 0xFA0 + static_cast<std::uint64_t>(load * 1000));
      CbrMixSpec spec;
      spec.target_load = load;
      spec.classes = {kCbrHigh, kCbrMedium, kCbrLow};
      spec.class_weights = {1.0, 1.0, 1.0};
      NetworkWorkload workload = build_network_cbr_mix(config, ring, spec, rng);
      MmrNetworkSimulation simulation(config, std::move(workload));
      const NetworkMetrics m = simulation.run();
      const DegradationMetrics& deg = m.degradation;
      table.add_row(
          {AsciiTable::num(load * 100, 0), arbiter,
           AsciiTable::num(m.flits_generated == 0
                               ? 0.0
                               : 100.0 *
                                     static_cast<double>(m.flits_delivered) /
                                     static_cast<double>(m.flits_generated),
                           1),
           std::to_string(deg.flits_dropped),
           std::to_string(deg.flits_corrupted),
           std::to_string(deg.credits_lost) + "/" +
               std::to_string(deg.credits_restored),
           std::to_string(deg.teardowns) + "/" + std::to_string(deg.reroutes) +
               "/" + std::to_string(deg.readmissions),
           AsciiTable::num(deg.recovery_latency_hist.p50(), 1) + "/" +
               AsciiTable::num(deg.recovery_latency_hist.p95(), 1),
           AsciiTable::num(deg.violation_rate_during_fault() * 100, 2),
           AsciiTable::num(deg.violation_rate_outside_fault() * 100, 2)});
      row.push_back(m);
    }
    grid.emplace_back(load, std::move(row));
  }
  std::cout << table.render() << '\n';

  // Per-class survival at the heaviest load: QoS scheduling should keep the
  // high-bandwidth CBR class alive at the same rate as the rest (losses here
  // are wire faults, not scheduling starvation).
  std::cout << "Per-class survival (delivered/generated) at "
            << AsciiTable::num(grid.back().first * 100, 0) << "% load\n";
  std::vector<std::string> survival_header = {"class"};
  survival_header.insert(survival_header.end(), args.arbiters.begin(),
                         args.arbiters.end());
  AsciiTable survival_table(survival_header);
  const std::vector<NetworkMetrics>& heavy = grid.back().second;
  if (!heavy.empty()) {
    for (std::size_t cls = 0; cls < heavy.front().per_class.size(); ++cls) {
      std::vector<std::string> cells = {heavy.front().per_class[cls].label};
      for (const NetworkMetrics& m : heavy) {
        cells.push_back(AsciiTable::num(survival_rate(m.per_class[cls]) * 100,
                                        2) + "%");
      }
      survival_table.add_row(std::move(cells));
    }
  }
  std::cout << survival_table.render();
  std::cout << "\nExpected shape: wire losses are comparable across arbiters "
               "(the plan and its\nRNG streams are identical; only the flit "
               "arrival order differs), while the\nviolation-rate split shows "
               "how each arbiter absorbs the reroute detour and\nthe queue "
               "backlog behind the outage.\n";
  return 0;
}
