// Figure 9: average frame delay since generation (log scale in the paper)
// vs generated load for VBR MPEG-2 traffic, SR and BB injection models.
// Frame delay = delay of a frame's last flit measured from the frame
// boundary, making the metric independent of the injection model.
//
// Paper result: with COA, SR frame delays stay low up to ~78% and rise
// sharply at ~80%; WFA saturates around 70%.  BB delays are higher below
// saturation but saturate at the same loads.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mmr;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.loads.empty()) {
    args.loads = args.full ? std::vector<double>{0.40, 0.50, 0.60, 0.65, 0.70,
                                                 0.75, 0.78, 0.80, 0.85}
                           : std::vector<double>{0.50, 0.65, 0.70, 0.78, 0.85};
  }

  std::vector<std::vector<SweepPoint>> all_points;
  for (const InjectionModel model :
       {InjectionModel::kSmoothRate, InjectionModel::kBackToBack}) {
    SweepSpec spec;
    spec.kind = WorkloadKind::kVbr;
    spec.loads = args.loads;
    spec.arbiters = args.arbiters;
    spec.threads = args.threads;
    spec.vbr.model = model;
    spec.vbr.trace_gops = 8;
    spec.replications = args.full ? 4 : 2;
    bench::apply_run_scale(spec.base, args, /*quick=*/300'000,
                           /*full=*/1'600'000);

    bench::print_header(
        std::string("Figure 9: VBR average frame delay since generation, ") +
            to_string(model) + " injection model",
        spec, args.full);
    const std::vector<SweepPoint> points = run_sweep(spec);
    all_points.push_back(points);

    std::cout << "Average FRAME delay (us) vs generated load\n";
    std::cout << sweep_table(points, frame_delay_us(), 1).render() << '\n';
    print_saturation_summary(std::cout, points, spec.arbiters);

    bench::print_csv_block(points,
                           {{"frame_delay_us", frame_delay_us()},
                            {"frame_jitter_us", frame_jitter_us()},
                            {"utilization_pct", crossbar_utilization_pct()},
                            {"delivered_pct", delivered_load_pct()},
                            {"generated_pct", generated_load_pct()}});
    std::cout << '\n';
  }

  std::cout << "BB-vs-SR check (paper: BB delays higher below saturation, "
               "same saturation load):\n";
  for (const std::string& arbiter : args.arbiters) {
    std::cout << "  " << arbiter << ": SR saturates at "
              << AsciiTable::num(saturation_load(all_points[0], arbiter) * 100,
                                 0)
              << "%, BB at "
              << AsciiTable::num(saturation_load(all_points[1], arbiter) * 100,
                                 0)
              << "%\n";
  }
  return 0;
}
