// Shared plumbing for the paper-reproduction bench binaries.
//
// Every bench accepts `key=value` arguments: SimConfig keys (see
// src/mmr/sim/config.hpp) plus the bench keys
//   loads=0.1,0.3,...   sweep points (fractions)
//   arbiters=coa,wfa    arbiters to compare
//   threads=N           parallel sweep workers (0 = hardware)
//   full=1              paper-scale cycle counts (also via MMR_FULL=1)
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "mmr/core/experiment.hpp"
#include "mmr/core/report.hpp"

namespace mmr::bench {

struct BenchArgs {
  std::vector<double> loads;
  std::vector<std::string> arbiters = {"coa", "wfa"};
  std::size_t threads = 0;
  bool full = false;
  std::vector<std::string> config_overrides;
};

inline std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::istringstream in(text);
  std::string part;
  while (std::getline(in, part, sep)) parts.push_back(part);
  return parts;
}

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  if (const char* env = std::getenv("MMR_FULL");
      env != nullptr && std::string(env) == "1") {
    args.full = true;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = eq == std::string::npos ? arg : arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "loads") {
      args.loads.clear();
      for (const std::string& part : split(value, ',')) {
        args.loads.push_back(std::stod(part));
      }
    } else if (key == "arbiters") {
      args.arbiters = split(value, ',');
    } else if (key == "threads") {
      args.threads = std::stoul(value);
    } else if (key == "full") {
      args.full = value != "0";
    } else {
      args.config_overrides.push_back(arg);
    }
  }
  return args;
}

/// Applies run-length presets and user overrides to a config.
inline void apply_run_scale(SimConfig& config, const BenchArgs& args,
                            Cycle quick_measure, Cycle full_measure) {
  config.warmup_cycles = args.full ? 50'000 : 20'000;
  config.measure_cycles = args.full ? full_measure : quick_measure;
  apply_overrides(config, args.config_overrides);
  config.validate();
}

inline void print_header(const std::string& title, const SweepSpec& spec,
                         bool full) {
  std::cout << "==== " << title << " ====\n";
  std::cout << "router " << spec.base.ports << "x" << spec.base.ports << ", "
            << spec.base.vcs_per_link << " VCs/link, "
            << spec.base.candidate_levels << " candidate levels, "
            << to_string(spec.base.priority_scheme) << " priorities, "
            << (spec.base.link_bandwidth_bps / 1e9) << " Gbps links, "
            << spec.base.flit_bits << "-bit flits\n";
  std::cout << "cycles: " << spec.base.warmup_cycles << " warmup + "
            << spec.base.measure_cycles << " measured ("
            << (full ? "full/paper scale" : "quick preset; MMR_FULL=1 for "
                                            "paper scale")
            << ")\n\n";
}

inline void print_csv_block(const std::vector<SweepPoint>& points,
                            const std::vector<std::pair<std::string,
                                                        MetricExtractor>>&
                                extractors) {
  std::cout << "\n--- CSV ---\n";
  write_sweep_csv(std::cout, points, extractors);
  std::cout << "--- end CSV ---\n";
}

}  // namespace mmr::bench
