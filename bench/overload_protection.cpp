// Overload protection: per-connection policing against rogue sources.
//
// A fixed CBR workload is admitted at a healthy load, then a fraction of
// the sources turn rogue and inject several times their admitted rate.
// Scenarios per arbiter (all from the same fixed seed, so the comparison is
// deterministic):
//   baseline     no rogues, no policing (the healthy reference)
//   unpoliced    rogues active, policing off: the excess enters the switch
//                and compliant connections miss their QoS deadline
//   drop/shape/demote
//                rogues active, injection policing on: the excess is
//                absorbed at the NIC and compliant connections keep QoS
//
// The bench exits nonzero if the protection story does not hold: with
// policing on, every policing action must land on a rogue connection and
// compliant deadline violations must vanish (drop policy); with policing
// off they must be nonzero.  Note saturated() is the wrong probe here —
// generated load deliberately counts the rogue excess that policing drops
// at injection, so the delivered/generated gap is by construction.

#include "bench_util.hpp"

namespace {

struct Scenario {
  const char* name;
  const char* rogue;   // rogue= override, "" for none
  const char* police;  // police= override, "" for none
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mmr;
  bench::BenchArgs args = bench::parse_args(argc, argv);

  SimConfig base;
  bench::apply_run_scale(base, args, /*quick=*/100'000, /*full=*/400'000);

  const double qos_load = 0.55;
  const char* rogue = "frac:0.5,scale:5";
  const std::vector<Scenario> scenarios = {
      {"baseline", "", ""},
      {"unpoliced", rogue, ""},
      {"drop", rogue, "drop"},
      {"shape", rogue, "shape,penalty:64"},
      {"demote", rogue, "demote"},
  };

  std::cout << "==== Overload protection: " << qos_load * 100
            << "% CBR, rogues at " << rogue << " ====\n"
            << "router " << base.ports << "x" << base.ports << ", "
            << base.vcs_per_link << " VCs/link, " << base.warmup_cycles
            << " warmup + " << base.measure_cycles << " measured cycles\n\n";

  bool verdict_ok = true;
  const auto fail = [&verdict_ok](const std::string& why) {
    std::cout << "VERDICT FAIL: " << why << '\n';
    verdict_ok = false;
  };

  for (const std::string& arbiter : args.arbiters) {
    AsciiTable table({"scenario", "compliant viol %", "rogue viol %",
                      "compliant policed", "rogue policed", "delivered %",
                      "wd escalations"});
    double unpoliced_rate = 0.0;  // filled by the unpoliced scenario
    for (const Scenario& s : scenarios) {
      SimConfig config = base;
      config.arbiter = arbiter;
      config.rogue_spec = s.rogue;
      config.police_spec = s.police;

      Rng rng(config.seed, 1);
      CbrMixSpec mix;
      mix.target_load = qos_load;
      MmrSimulation simulation(config, build_cbr_mix(config, mix, rng));
      const SimulationMetrics m = simulation.run();
      const OverloadMetrics& o = m.overload;

      table.add_row(
          {s.name,
           o.enabled ? AsciiTable::num(o.compliant_violation_rate() * 100, 2)
                     : "-",
           o.enabled ? AsciiTable::num(o.rogue_violation_rate() * 100, 2)
                     : "-",
           o.enabled ? std::to_string(o.compliant_policed) : "-",
           o.enabled ? std::to_string(o.rogue_policed) : "-",
           AsciiTable::num(m.delivered_load * 100, 1),
           o.enabled ? std::to_string(o.watchdog_escalations) : "-"});

      const std::string tag = arbiter + "/" + s.name;
      if (s.police[0] != '\0') {
        // Policing on: rogues absorb every policing action...
        if (o.compliant_policed != 0) {
          fail(tag + ": " + std::to_string(o.compliant_policed) +
               " policing actions hit compliant connections");
        }
        if (o.rogue_policed == 0) {
          fail(tag + ": rogue excess was never policed");
        }
        // ...and under the drop policy compliant QoS essentially holds:
        // below 1% of the damage the same rogues inflict unpoliced.  (The
        // relative bound keeps the verdict meaningful when warmup/measure
        // are overridden far below the preset, where a handful of startup
        // transients can straggle past the deadline.)
        if (std::string(s.police) == "drop" &&
            o.compliant_violation_rate() > 0.01 * unpoliced_rate) {
          fail(tag + ": " + std::to_string(o.compliant_violations) +
               " compliant deadline violations despite policing");
        }
      } else if (s.rogue[0] != '\0') {
        // Policing off: the rogue excess must measurably hurt compliant
        // connections, otherwise the protection scenarios prove nothing.
        unpoliced_rate = o.compliant_violation_rate();
        if (o.compliant_violations == 0) {
          fail(tag + ": compliant connections kept QoS without policing");
        }
      }
    }
    std::cout << arbiter << ":\n" << table.render() << '\n';
  }

  std::cout << (verdict_ok
                    ? "VERDICT PASS: policing confines the damage to rogue "
                      "connections;\nunpoliced rogues break compliant QoS.\n"
                    : "one or more protection properties failed (see above)\n");
  return verdict_ok ? 0 : 1;
}
