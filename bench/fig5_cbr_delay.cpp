// Figure 5: average flit delay since generation vs offered load for CBR
// traffic, per bandwidth class (64 Kbps / 1.54 Mbps / 55 Mbps), comparing
// the Candidate-Order Arbiter with the Wave Front Arbiter.
//
// Paper result: both schemes are comparable for the low and medium classes;
// for the 55 Mbps class WFA saturates around 70% offered load while COA
// holds to about 83%, because COA allocates output bandwidth by priority.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mmr;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.loads.empty()) {
    args.loads = args.full
                     ? std::vector<double>{0.10, 0.20, 0.30, 0.40, 0.50, 0.60,
                                           0.65, 0.70, 0.75, 0.80, 0.83, 0.85,
                                           0.90}
                     : std::vector<double>{0.20, 0.40, 0.60, 0.70, 0.78, 0.85,
                                           0.92};
  }

  SweepSpec spec;
  spec.kind = WorkloadKind::kCbr;
  spec.loads = args.loads;
  spec.arbiters = args.arbiters;
  spec.threads = args.threads;
  // Uniform random destinations, as in the paper; replications pool several
  // workload draws per point so one hot output link does not dominate.
  spec.cbr.destinations = DestinationPolicy::kUniformRandom;
  spec.replications = args.full ? 5 : 3;
  bench::apply_run_scale(spec.base, args, /*quick=*/250'000,
                         /*full=*/1'000'000);

  bench::print_header("Figure 5: CBR average flit delay since generation",
                      spec, args.full);
  const std::vector<SweepPoint> points = run_sweep(spec);

  const struct {
    const char* figure;
    const char* label;
  } panels[] = {
      {"Fig 5(a)", "CBR 64 Kbps"},
      {"Fig 5(b)", "CBR 1.54 Mbps"},
      {"Fig 5(c)", "CBR 55 Mbps"},
  };
  for (const auto& panel : panels) {
    std::cout << panel.figure << ": " << panel.label
              << " connections — average flit delay (us)\n";
    std::cout << sweep_table(points, class_delay_us(panel.label), 2).render()
              << '\n';
  }

  std::cout << "Crossbar utilization (%) — context for the saturation "
               "points\n";
  std::cout << sweep_table(points, crossbar_utilization_pct(), 1).render()
            << '\n';
  print_saturation_summary(std::cout, points, spec.arbiters);

  std::vector<std::pair<std::string, MetricExtractor>> extractors = {
      {"delay_64k_us", class_delay_us("CBR 64 Kbps")},
      {"delay_1540k_us", class_delay_us("CBR 1.54 Mbps")},
      {"delay_55m_us", class_delay_us("CBR 55 Mbps")},
      {"utilization_pct", crossbar_utilization_pct()},
      {"delivered_pct", delivered_load_pct()},
      {"generated_pct", generated_load_pct()},
  };
  bench::print_csv_block(points, extractors);
  return 0;
}
