// Figure 7: the two VBR injection models, Back-to-Back (BB) and Smooth-Rate
// (SR).  Renders the emission pattern of one connection's first frames —
// flits at the common peak rate then idle (BB) vs evenly spread (SR) — and
// verifies both inject the same flits per frame.

#include <cstdio>
#include <iostream>

#include "mmr/sim/config.hpp"
#include "mmr/sim/rng.hpp"
#include "mmr/traffic/vbr.hpp"

namespace {

void render_model(const mmr::MpegTrace& trace, mmr::InjectionModel model,
                  const mmr::TimeBase& time_base) {
  using namespace mmr;
  VbrSource source(0, trace, model, time_base, trace.peak_bps());

  const double period = time_base.seconds_to_cycles(kFramePeriodSeconds);
  const std::uint32_t frames_shown = 3;
  std::vector<Flit> flits;
  source.generate(static_cast<Cycle>(period * frames_shown), flits);

  std::printf("%s model: '%s', first %u frames (frame period %.0f cycles)\n",
              to_string(model), trace.sequence.c_str(), frames_shown, period);
  // One text row per frame; 100 columns span the frame period.
  constexpr int kColumns = 100;
  for (std::uint32_t frame = 0; frame < frames_shown; ++frame) {
    std::string row(kColumns, '.');
    std::uint32_t count = 0;
    for (const Flit& flit : flits) {
      if (flit.frame != frame) continue;
      ++count;
      const double offset =
          static_cast<double>(flit.generated_at) - frame * period;
      const int column = static_cast<int>(offset / period * kColumns);
      if (column >= 0 && column < kColumns)
        row[static_cast<std::size_t>(column)] = '|';
    }
    std::printf("  frame %u (%4u flits): %s\n", frame, count, row.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace mmr;
  const SimConfig config;
  const TimeBase time_base = config.time_base();

  std::cout << "==== Figure 7: VBR injection models ====\n";
  std::cout << "'|' marks flit emissions within the 33 ms frame time; BB "
               "bursts at the\npeak rate then idles, SR spreads each frame "
               "evenly.\n\n";

  Rng rng(0x5EED, 0xF17);
  const MpegTrace trace =
      generate_mpeg_trace(mpeg_sequence("Flower Garden"), 1, rng);
  render_model(trace, InjectionModel::kBackToBack, time_base);
  render_model(trace, InjectionModel::kSmoothRate, time_base);

  std::printf("IATp (peak inter-arrival) = %.1f cycles; SR IAT varies per "
              "frame with its size.\n",
              time_base.link_bandwidth_bps() / trace.peak_bps());
  return 0;
}
