// Ablation: number of candidate levels (the paper fixes L = 4).  More
// levels give the switch scheduler more alternatives per input port —
// better matchings at high load at the cost of wider selection hardware.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mmr;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.loads.empty()) args.loads = {0.60, 0.75, 0.85};
  const std::vector<std::uint32_t> level_choices = {1, 2, 4, 8};

  std::cout << "==== Ablation: candidate levels (paper uses 4) ====\n\n";
  for (const std::string& arbiter : args.arbiters) {
    std::vector<std::string> header = {"load %"};
    for (std::uint32_t levels : level_choices)
      header.push_back("L=" + std::to_string(levels));
    AsciiTable delivered(header);
    AsciiTable delay(header);

    // One sweep per level count; rows assembled across sweeps.
    std::vector<std::vector<SweepPoint>> results;
    for (std::uint32_t levels : level_choices) {
      SweepSpec spec;
      spec.kind = WorkloadKind::kCbr;
      spec.loads = args.loads;
      spec.arbiters = {arbiter};
      spec.threads = args.threads;
      spec.replications = args.full ? 4 : 2;
      bench::apply_run_scale(spec.base, args, /*quick=*/120'000,
                             /*full=*/600'000);
      spec.base.candidate_levels = levels;
      results.push_back(run_sweep(spec));
    }
    for (std::size_t li = 0; li < args.loads.size(); ++li) {
      std::vector<std::string> row_delivered = {
          AsciiTable::num(args.loads[li] * 100, 0)};
      std::vector<std::string> row_delay = row_delivered;
      for (std::size_t c = 0; c < level_choices.size(); ++c) {
        const SimulationMetrics& m = results[c][li].metrics;
        row_delivered.push_back(AsciiTable::num(m.delivered_load * 100, 1));
        row_delay.push_back(AsciiTable::num(m.flit_delay_us.mean(), 1));
      }
      delivered.add_row(std::move(row_delivered));
      delay.add_row(std::move(row_delay));
    }
    std::cout << arbiter << " — delivered load (%)\n" << delivered.render();
    std::cout << arbiter << " — mean flit delay (us)\n" << delay.render()
              << '\n';
  }
  return 0;
}
